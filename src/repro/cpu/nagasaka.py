"""Multicore CPU SpGEMM after Nagasaka et al. [27] (hashmap variant).

This is the paper's CPU baseline *and* the CPU side of the hybrid executor:
"a recent high-performance multicore implementation from Nagasaka et al.
was invoked for each chunk (more specifically, the hashmap implementation
available from them)".

Structure of the original: rows are partitioned over threads; each thread
runs a symbolic pass sizing per-row hash tables from the upper bound, then
a numeric pass inserting products and finally sorting each row by column.
We reproduce exactly that structure — row-range partitioning balanced by
flops, per-range hash accumulation, int64 indices throughout (the reason
the paper prefers it over MKL) — with the per-range work vectorized and
ranges dispatched on a thread pool (numpy releases the GIL in its inner
loops, so ranges do overlap).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from ..spgemm.accumulators import hash_accumulate_rows
from ..spgemm.flops import flops_per_row

__all__ = ["balanced_row_ranges", "spgemm_nagasaka"]


def balanced_row_ranges(
    row_flops: np.ndarray, num_ranges: int
) -> List[Tuple[int, int]]:
    """Split rows into contiguous ranges with near-equal total flops.

    Greedy prefix splitting on the flop prefix-sum — the load balancing the
    multicore implementation performs before assigning rows to threads.
    Returns at most ``num_ranges`` non-empty ranges covering all rows.
    """
    if num_ranges <= 0:
        raise ValueError("num_ranges must be positive")
    n = int(row_flops.size)
    if n == 0:
        return []
    prefix = np.concatenate([[0], np.cumsum(row_flops, dtype=np.int64)])
    total = int(prefix[-1])
    if total == 0:
        return [(0, n)]
    targets = np.linspace(0, total, num_ranges + 1)
    cuts = np.searchsorted(prefix, targets, side="left")
    cuts[0], cuts[-1] = 0, n
    cuts = np.unique(np.clip(cuts, 0, n))
    return [(int(cuts[i]), int(cuts[i + 1])) for i in range(len(cuts) - 1)]


def spgemm_nagasaka(
    a: CSRMatrix,
    b: CSRMatrix,
    *,
    num_threads: Optional[int] = None,
) -> CSRMatrix:
    """Multicore hash SpGEMM ``A x B``.

    ``num_threads`` defaults to the host's CPU count (the paper uses all
    28 hardware threads of its Xeon).
    """
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    if num_threads is None:
        import os

        num_threads = os.cpu_count() or 1

    row_flops = flops_per_row(a, b)
    ranges = balanced_row_ranges(row_flops, num_threads)
    if not ranges:
        return CSRMatrix.empty(a.n_rows, b.n_cols)

    work = row_flops // 2  # upper-bound products sizes the hash tables

    def process(rng: Tuple[int, int]):
        lo, hi = rng
        rows = np.arange(lo, hi, dtype=INDEX_DTYPE)
        return hash_accumulate_rows(a, b, rows, work[lo:hi], with_values=True)

    if len(ranges) == 1:
        results = [process(ranges[0])]
    else:
        with ThreadPoolExecutor(max_workers=num_threads) as pool:
            results = list(pool.map(process, ranges))

    # stitch the contiguous per-range outputs back into one CSR matrix
    counts = np.zeros(a.n_rows, dtype=INDEX_DTYPE)
    for res in results:
        counts[res.rows] = res.counts
    row_offsets = np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=row_offsets[1:])
    col_ids = np.concatenate([r.col_ids for r in results]) if results else np.empty(0, dtype=INDEX_DTYPE)
    data = np.concatenate([r.values for r in results]) if results else np.empty(0, dtype=VALUE_DTYPE)
    return CSRMatrix(a.n_rows, b.n_cols, row_offsets, col_ids, data, check=False)
