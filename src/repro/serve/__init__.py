"""SpGEMM-as-a-service: the async multi-tenant job server.

The single-run engine answers one question per process invocation; this
package wraps it in a long-lived asyncio service (``repro serve``) that
accepts concurrent multiply jobs over HTTP/JSON (TCP or a unix socket),
schedules them through a shared bounded worker pool, and streams
per-chunk completion events back to callers.  Two serving-layer
performance mechanisms carry the throughput story:

* the **content-addressed operand cache** (:mod:`.cache`) keys
  shared-memory CSR segments on matrix content hash, so repeated
  operands across jobs attach zero-copy instead of being re-materialized
  per job;
* **estimation-driven admission + weighted fair queueing**
  (:mod:`.scheduler`) feeds :func:`~repro.spgemm.estimate.\
estimate_row_nnz` footprints into the governor's host-memory ledger —
  shared across *jobs* instead of chunks — so N concurrent jobs never
  overcommit the node, with per-tenant quotas and weights deciding who
  runs next.

``repro serve-bench`` (:mod:`.bench`) is the load-test harness: it
drives hundreds of concurrent jobs through a real socket and records
p50/p99 latency, throughput, and cache hit rate to ``BENCH_serve.json``.

See ``docs/SERVING.md`` for the API and the tenancy/quota model.
"""

from .cache import OperandCache, OperandLease, content_hash
from .client import ServeClient, ServeError
from .jobs import JobRecord, JobSpec, JobState, canonical_spec, resolve_operand
from .scheduler import FairQueue, JobScheduler, TenantQuota
from .server import ServerConfig, SpgemmServer

__all__ = [
    "ServeClient",
    "ServeError",
    "OperandCache",
    "OperandLease",
    "content_hash",
    "JobSpec",
    "JobRecord",
    "JobState",
    "canonical_spec",
    "resolve_operand",
    "TenantQuota",
    "FairQueue",
    "JobScheduler",
    "ServerConfig",
    "SpgemmServer",
]
