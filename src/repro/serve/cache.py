"""Content-addressed shared-memory operand cache.

:class:`~repro.sparse.ops.RowSliceCache` caches row *slices* of one
operand within one run; the job server needs the generalization across
runs: many concurrent jobs naming the same operand (same suite entry,
same generator spec, same uploaded matrix) should share **one**
materialized copy.  :class:`OperandCache` keys whole CSR operands on
their content hash — SHA-256 over shape and the three CSR arrays — and
stores each under a :class:`~repro.sparse.shm.SharedCSR` segment, so

* a repeated operand costs one dictionary lookup instead of a rebuild
  (suite construction, generator run, file parse, or JSON decode), and
* every job's working view aliases the same shared mapping zero-copy —
  N jobs referencing one operand hold one copy of its bytes, and the
  process backend's per-run panel segments are carved from that single
  mapping rather than N private heap copies.

Same-shape/different-values matrices hash differently (values are part
of the digest), so two jobs can never be served each other's operand —
the collision tests pin this.

Eviction is byte-budget LRU over *unpinned* entries only: a job holds a
:class:`OperandLease` (refcount pin) for the duration of its run, and a
pinned segment is never unlinked no matter the pressure — eviction
happens on release instead.  Like ``RowSliceCache``, the freshest entry
survives even when it alone exceeds the budget (caching nothing would
make repeated single-operand workloads pay full price forever).

A *spec alias* table maps canonical operand-spec strings (see
:func:`~repro.serve.jobs.canonical_spec`) to content hashes, so a job
repeating ``{"gen": {...}}`` or ``{"suite": "stokes"}`` skips even the
materialization step — the hash of a deterministic spec is learned on
first build and trusted afterwards.

All segments live under one pid-guarded cleanup prefix
(:func:`~repro.sparse.shm.run_prefix` with the server's run id), so a
server crash cannot leak ``/dev/shm`` entries past interpreter exit.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..sparse.formats import CSRMatrix
from ..sparse.shm import (
    SharedCSR,
    cleanup_segments,
    register_cleanup_prefix,
    run_prefix,
    unregister_cleanup_prefix,
)

__all__ = ["content_hash", "OperandCache", "OperandLease"]

#: default byte budget — enough for the bench workloads, small enough
#: that eviction is exercised by modest test matrices
DEFAULT_CACHE_BYTES = 256 << 20


def content_hash(matrix: CSRMatrix) -> str:
    """SHA-256 content address of a CSR matrix.

    Covers shape, structure, *and* values in a fixed order — the same
    fields :func:`~repro.core.spill.operand_grid_hash` binds a manifest
    to — so equal hashes mean bit-identical operands and two matrices
    differing only in values still address different cache entries.
    """
    h = hashlib.sha256()
    h.update(repr(matrix.shape).encode())
    for arr in (matrix.row_offsets, matrix.col_ids, matrix.data):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


class _Entry:
    __slots__ = ("shared", "nbytes", "pins")

    def __init__(self, shared: SharedCSR) -> None:
        self.shared = shared
        self.nbytes = max(shared.descriptor.nbytes, 1)
        self.pins = 0


class OperandLease:
    """A refcount pin on one cached operand.

    ``.matrix`` is a zero-copy CSR view over the shared segment; it must
    not outlive the lease.  Release with :meth:`release` (idempotent) or
    use as a context manager — an unreleased lease pins its entry
    against eviction forever, which is the bug the lease tests simulate
    on purpose.
    """

    def __init__(self, cache: "OperandCache", key: str,
                 entry: _Entry) -> None:
        self._cache = cache
        self._key = key
        self._entry = entry
        self._released = False

    @property
    def key(self) -> str:
        return self._key

    @property
    def matrix(self) -> CSRMatrix:
        return self._entry.shared.matrix

    @property
    def nbytes(self) -> int:
        return self._entry.nbytes

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._cache._unpin(self._key)

    def __enter__(self) -> "OperandLease":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class OperandCache:
    """Byte-budget LRU of content-addressed shared-memory operands.

    Thread-safe: jobs land on pool threads while the server's event
    loop resolves operands, and both sides hit the cache.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES, *,
                 run_id: str = "cache", tracer=None) -> None:
        if max_bytes < 1:
            raise ValueError("operand cache budget must be >= 1 byte")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._aliases: Dict[str, str] = {}
        self._prefix = run_prefix(run_id)
        self._seq = 0
        self._closed = False
        self._tracer = tracer
        register_cleanup_prefix(self._prefix)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.held_bytes = 0

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "held_bytes": self.held_bytes,
                "max_bytes": self.max_bytes,
                "pinned": sum(1 for e in self._entries.values() if e.pins),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }

    def _note(self) -> None:
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.gauge("operand_cache", held_bytes=self.held_bytes,
                               entries=len(self._entries), hits=self.hits,
                               misses=self.misses, evictions=self.evictions)

    # ------------------------------------------------------------------
    # the content-addressed store
    # ------------------------------------------------------------------
    def lease(self, key: str, *, count: bool = False) -> Optional[OperandLease]:
        """Pin and return the entry at ``key``, or ``None``.

        With ``count=False`` (default) the probe does not touch the
        hit/miss counters, so speculative lookups don't skew the hit
        rate; ``count=True`` records the outcome — the path operand
        *resolution* takes (alias fast path, ``{"hash": ...}`` specs)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._closed:
                if count:
                    self.misses += 1
                return None
            if count:
                self.hits += 1
            entry.pins += 1
            self._entries.move_to_end(key)
            return OperandLease(self, key, entry)

    def get_or_put(self, matrix: CSRMatrix, *,
                   key: Optional[str] = None) -> Tuple[OperandLease, bool]:
        """Return ``(lease, hit)`` for ``matrix``'s content address.

        On miss the matrix is copied into a fresh shared segment (the
        one copy its whole cache lifetime will serve zero-copy); on hit
        the existing segment is pinned and the argument matrix is
        dropped.  ``key`` skips re-hashing when the caller already knows
        the content address (the spec-alias fast path).
        """
        if key is None:
            key = content_hash(matrix)
        with self._lock:
            if self._closed:
                raise RuntimeError("operand cache is closed")
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                entry.pins += 1
                self._entries.move_to_end(key)
                self._note()
                return OperandLease(self, key, entry), True
            self.misses += 1
            self._seq += 1
            name = f"{self._prefix}-op{self._seq}"
        # copy into shared memory outside the lock (the expensive part);
        # a racing same-key insert is resolved below by keeping the
        # first-landed segment and discarding the loser's
        shared = SharedCSR.create(matrix, name)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.pins += 1
                self._entries.move_to_end(key)
                loser = shared
            else:
                entry = _Entry(shared)
                entry.pins = 1
                self._entries[key] = entry
                self.held_bytes += entry.nbytes
                loser = None
                self._evict_unpinned()
            self._note()
        if loser is not None:
            loser.close()
            loser.unlink()
        return OperandLease(self, key, entry), False

    def _unpin(self, key: str) -> None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.pins > 0:
                entry.pins -= 1
            self._evict_unpinned()
            self._note()

    def _evict_unpinned(self) -> None:
        # called with the lock held: drop stale unpinned entries oldest
        # first while over budget, always sparing the freshest entry
        while self.held_bytes > self.max_bytes and len(self._entries) > 1:
            victim_key = None
            for k, e in self._entries.items():  # oldest -> newest
                if e.pins == 0 and k != next(reversed(self._entries)):
                    victim_key = k
                    break
            if victim_key is None:
                return  # everything evictable is pinned; retry on release
            entry = self._entries.pop(victim_key)
            self.held_bytes -= entry.nbytes
            self.evictions += 1
            self._drop_aliases(victim_key)
            entry.shared.close()
            entry.shared.unlink()

    def _drop_aliases(self, key: str) -> None:
        for spec in [s for s, k in self._aliases.items() if k == key]:
            del self._aliases[spec]

    # ------------------------------------------------------------------
    # spec aliases (canonical spec string -> content hash)
    # ------------------------------------------------------------------
    def lookup_alias(self, spec_key: str) -> Optional[str]:
        with self._lock:
            key = self._aliases.get(spec_key)
            # an alias is only useful while its entry is live
            return key if key in self._entries else None

    def alias(self, spec_key: str, key: str) -> None:
        """Teach the cache that deterministic spec ``spec_key``
        materializes to content ``key`` (must be a live entry)."""
        with self._lock:
            if key in self._entries:
                self._aliases[spec_key] = key

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def prefix(self) -> str:
        return self._prefix

    def close(self) -> None:
        """Unlink every segment (leases become invalid) and drop the
        exit-time sweep registration.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
            self._aliases.clear()
            self.held_bytes = 0
        for entry in entries:
            entry.shared.close()
            entry.shared.unlink()
        cleanup_segments(self._prefix)
        unregister_cleanup_prefix(self._prefix)

    def __enter__(self) -> "OperandCache":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
