"""The asyncio SpGEMM job server.

A deliberately small HTTP/1.1 server hand-rolled on asyncio streams (no
framework dependency — the container ships none), listening on TCP
and/or a unix socket with one handler:

* ``GET  /v1/health`` — liveness probe;
* ``GET  /v1/stats`` — cache / scheduler / ledger counters;
* ``GET  /v1/jobs/<id>`` — one job's state snapshot (poll mode);
* ``POST /v1/operands`` — materialize + cache an operand spec, return
  its content hash (``{"spec": {...}}``);
* ``POST /v1/jobs`` — submit a multiply job.  Default is wait-mode (the
  response is the final job snapshot); ``"stream": true`` switches the
  response to ``application/x-ndjson`` — one JSON event per line
  (``queued``, ``admitted``, ``started``, ``chunk`` per completed
  chunk, then ``done``/``failed``/``rejected``) as they happen;
  ``"wait": false`` returns the queued snapshot immediately.

Request handling stays on the event loop; everything heavy — operand
materialization, footprint estimation, the engine run itself — happens
on worker threads (the scheduler's bounded pool for runs, the default
executor for operand prep).  The engine is re-entrant (per-run tracer,
governor, caches; thread-keyed deadlines; pid-guarded shm sweeps), so
concurrent jobs are ordinary overlapping calls of
:func:`~repro.core.executor.execute_chunk_grid`.

Every job's result carries the CRC32 fingerprint of the assembled
product (:func:`~repro.core.governor.integrity.crc32_matrix`), so
callers can verify bit-identity against a local single-run execution
without shipping the matrix; ``"return_result": true`` additionally
inlines the product arrays (the oracle path of the load test).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..core.assemble import assemble_chunks
from ..core.chunks import ChunkGrid, csr_bytes
from ..core.executor import execute_chunk_grid
from ..core.governor.integrity import crc32_matrix
from ..observability import Tracer, tracer_events, write_chrome_trace
from ..spgemm.estimate import estimate_row_nnz
from .cache import DEFAULT_CACHE_BYTES, OperandCache, OperandLease, content_hash
from .jobs import JobRecord, JobSpec, JobState, canonical_spec, resolve_operand
from .scheduler import DEFAULT_HOST_BUDGET, JobScheduler, TenantQuota

__all__ = ["ServerConfig", "SpgemmServer"]

_TERMINAL = (JobState.DONE, JobState.FAILED, JobState.REJECTED)


@dataclass
class ServerConfig:
    """Everything ``repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral (reported at start)
    unix_socket: Optional[str] = None  # additionally serve on this path
    slots: int = 4                     # concurrent jobs on the pool
    shards: int = 1                    # device shards jobs are placed on
    host_mem_bytes: int = DEFAULT_HOST_BUDGET
    cache_bytes: int = DEFAULT_CACHE_BYTES
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    trace_dir: Optional[str] = None    # per-job Chrome traces land here
    max_body_bytes: int = 256 << 20


class SpgemmServer:
    """One serving process: cache + scheduler + HTTP front end."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        #: server-lifetime tracer: carries the cross-job ``host_mem``
        #: gauge stream (the no-overcommit evidence) and cache gauges
        self.tracer = Tracer(stream="server")
        self.cache = OperandCache(self.config.cache_bytes, run_id="serve",
                                  tracer=self.tracer)
        self.scheduler = JobScheduler(
            self._run_job,
            slots=self.config.slots,
            host_budget_bytes=self.config.host_mem_bytes,
            quotas=self.config.quotas,
            default_quota=self.config.default_quota,
            on_event=self._on_event,
            tracer=self.tracer,
            shards=self.config.shards,
        )
        self._records: Dict[int, JobRecord] = {}
        self._leases: Dict[int, Tuple[OperandLease, ...]] = {}
        self._operands: Dict[int, Tuple[Any, Any]] = {}
        self._event_queues: Dict[int, asyncio.Queue] = {}
        self._done_events: Dict[int, asyncio.Event] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._servers = []
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.scheduler.start()
        srv = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self._servers.append(srv)
        self.config.port = srv.sockets[0].getsockname()[1]
        if self.config.unix_socket:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle, path=self.config.unix_socket
                )
            )

    @property
    def address(self) -> Tuple[str, int]:
        return (self.config.host, self.config.port)

    async def stop(self) -> None:
        for srv in self._servers:
            srv.close()
            await srv.wait_closed()
        self._servers.clear()
        self.scheduler.stop()
        self.cache.close()
        if self.config.unix_socket:
            Path(self.config.unix_socket).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # job pipeline
    # ------------------------------------------------------------------
    def _prepare_job(self, spec: JobSpec, record: JobRecord) -> None:
        """Materialize/lease both operands and estimate the footprint.

        Runs on an executor thread (generator runs, file parses, and
        sampling are real CPU work).  Leases are held from here until
        the job's terminal state, so a queued job's operands can never
        be evicted under it."""
        leases = []
        mats = []
        try:
            for side, op_spec in (("a", spec.a_spec), ("b", spec.b_spec)):
                lease, hit = self._resolve_cached(op_spec)
                leases.append(lease)
                mats.append(lease.matrix)
                record.cache_hits[side] = hit
            a, b = mats
            if a.n_cols != b.n_rows:
                raise ValueError(
                    f"operand shapes do not chain: {a.shape} x {b.shape}"
                )
            est = estimate_row_nnz(a, b)
            out_bytes = csr_bytes(a.n_rows, max(int(est.total_nnz), 1))
            record.cost_bytes = (
                out_bytes
                + csr_bytes(a.n_rows, a.nnz) + csr_bytes(b.n_rows, b.nnz)
            )
            if spec.grid is not None:
                rp, cp = spec.grid
            else:
                rp, cp = min(4, max(1, a.n_rows // 256)), 1
            record.chunks_total = rp * cp
            self._leases[record.job_id] = tuple(leases)
            self._operands[record.job_id] = (a, b)
        except Exception:
            for lease in leases:
                lease.release()
            raise

    def _resolve_cached(self, op_spec: Dict[str, Any]):
        """One operand spec -> (lease, cache_hit)."""
        if not isinstance(op_spec, dict):
            raise ValueError("operand spec must be a JSON object")
        if set(op_spec) == {"hash"}:
            lease = self.cache.lease(op_spec["hash"], count=True)
            if lease is None:
                raise ValueError(
                    f"operand {op_spec['hash'][:12]}... is not in the cache"
                )
            return lease, True
        spec_key = None
        if "inline" not in op_spec:
            # deterministic spec: try the alias fast path first
            spec_key = canonical_spec(op_spec)
            key = self.cache.lookup_alias(spec_key)
            if key is not None:
                lease = self.cache.lease(key, count=True)
                if lease is not None:
                    return lease, True
        matrix = resolve_operand(op_spec)
        lease, hit = self.cache.get_or_put(matrix)
        if spec_key is not None:
            self.cache.alias(spec_key, lease.key)
        return lease, hit

    def _run_job(self, record: JobRecord) -> None:
        """Execute one admitted job on a scheduler pool thread."""
        spec = record.spec
        job_tracer = Tracer(stream=f"job{record.job_id}") if spec.trace \
            else None
        try:
            a, b = self._operands[record.job_id]
            with record.lock:
                record.state = JobState.RUNNING
                record.started_at = time.monotonic()
            if spec.grid is not None:
                rp, cp = spec.grid
            else:
                rp, cp = min(4, max(1, a.n_rows // 256)), 1
            grid = ChunkGrid.regular(a.n_rows, b.n_cols, rp, cp)

            def on_chunk(cid, stats):
                with record.lock:
                    record.chunks_done += 1
                self._emit(record, {
                    "event": "chunk", "job_id": record.job_id,
                    "chunk": cid, "nnz": stats.nnz_out,
                    "seconds": stats.measured_seconds,
                })

            t0 = time.perf_counter()
            profile, outputs = execute_chunk_grid(
                a, b, grid,
                workers=spec.workers,
                backend=spec.backend,
                keep_outputs=True,
                name=f"job{record.job_id}",
                kernel=spec.kernel,
                tracer=job_tracer,
                chunk_events=on_chunk,
            )
            matrix = assemble_chunks(outputs)
            wall = time.perf_counter() - t0
            result = {
                "crc32": crc32_matrix(matrix),
                "nnz": matrix.nnz,
                "shape": list(matrix.shape),
                "wall_seconds": wall,
                "chunks": profile.grid.num_chunks,
            }
            if spec.return_result:
                result["matrix"] = {
                    "shape": list(matrix.shape),
                    "row_offsets": matrix.row_offsets.tolist(),
                    "col_ids": matrix.col_ids.tolist(),
                    "data": matrix.data.tolist(),
                }
            if job_tracer is not None and self.config.trace_dir:
                trace_dir = Path(self.config.trace_dir)
                trace_dir.mkdir(parents=True, exist_ok=True)
                path = trace_dir / f"job{record.job_id}.json"
                write_chrome_trace(path, tracer_events(job_tracer))
                result["trace"] = str(path)
            with record.lock:
                record.result = result
                record.state = JobState.DONE
                record.finished_at = time.monotonic()
            self._emit(record, {"event": "done", **record.snapshot()})
        except Exception as exc:
            with record.lock:
                record.state = JobState.FAILED
                record.error = f"{type(exc).__name__}: {exc}"
                record.finished_at = time.monotonic()
            self._emit(record, {"event": "failed", **record.snapshot()})
        finally:
            self._operands.pop(record.job_id, None)
            for lease in self._leases.pop(record.job_id, ()):
                lease.release()

    # ------------------------------------------------------------------
    # events (pool/scheduler threads -> event loop)
    # ------------------------------------------------------------------
    def _on_event(self, record: JobRecord, event: Dict[str, Any]) -> None:
        self._emit(record, event)

    def _emit(self, record: JobRecord, event: Dict[str, Any]) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        terminal = event.get("event") in ("done", "failed", "rejected")
        queue = self._event_queues.get(record.job_id)

        def deliver() -> None:
            if queue is not None:
                queue.put_nowait(event)
            if terminal:
                done = self._done_events.get(record.job_id)
                if done is not None:
                    done.set()

        try:
            loop.call_soon_threadsafe(deliver)
        except RuntimeError:
            pass  # loop shut down mid-flight

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await reader.readline()
            if not request:
                return
            try:
                method, path, _ = request.decode("latin-1").split(" ", 2)
            except ValueError:
                await self._respond(writer, 400, {"error": "bad request line"})
                return
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = line.decode("latin-1").partition(":")
                headers[key.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0) or 0)
            if length > self.config.max_body_bytes:
                await self._respond(writer, 413, {"error": "body too large"})
                return
            body = await reader.readexactly(length) if length else b""
            await self._route(method.upper(), path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        if method == "GET" and path == "/v1/health":
            await self._respond(writer, 200, {
                "ok": True, "uptime_seconds": time.monotonic() - self._started,
            })
            return
        if method == "GET" and path == "/v1/stats":
            await self._respond(writer, 200, self.stats())
            return
        if method == "GET" and path.startswith("/v1/jobs/"):
            try:
                job_id = int(path.rsplit("/", 1)[1])
            except ValueError:
                await self._respond(writer, 400, {"error": "bad job id"})
                return
            record = self._records.get(job_id)
            if record is None:
                await self._respond(writer, 404, {"error": "no such job"})
                return
            await self._respond(writer, 200, record.snapshot())
            return
        if method == "POST" and path == "/v1/operands":
            await self._post_operand(body, writer)
            return
        if method == "POST" and path == "/v1/jobs":
            await self._post_job(body, writer)
            return
        await self._respond(writer, 404, {"error": f"no route {method} {path}"})

    async def _post_operand(self, body: bytes,
                            writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body or b"{}")
            spec = payload["spec"] if "spec" in payload else payload
            lease, hit = await asyncio.get_running_loop().run_in_executor(
                None, self._resolve_cached, spec
            )
        except Exception as exc:
            await self._respond(writer, 400, {
                "error": f"{type(exc).__name__}: {exc}"
            })
            return
        try:
            await self._respond(writer, 200, {
                "hash": lease.key, "cached": hit, "nbytes": lease.nbytes,
            })
        finally:
            lease.release()

    async def _post_job(self, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body or b"{}")
            spec = JobSpec.from_payload(payload)
        except Exception as exc:
            await self._respond(writer, 400, {
                "error": f"{type(exc).__name__}: {exc}"
            })
            return
        stream = bool(payload.get("stream", False))
        wait = bool(payload.get("wait", True))
        record = JobRecord(spec=spec)
        self._records[record.job_id] = record
        if stream:
            self._event_queues[record.job_id] = asyncio.Queue()
        done = asyncio.Event()
        self._done_events[record.job_id] = done
        try:
            await asyncio.get_running_loop().run_in_executor(
                None, self._prepare_job, spec, record
            )
        except Exception as exc:
            with record.lock:
                record.state = JobState.REJECTED
                record.error = f"{type(exc).__name__}: {exc}"
            self._finish_streams(record)
            await self._respond(writer, 400, record.snapshot())
            return
        accepted, reason = self.scheduler.submit(record)
        if not accepted:
            for lease in self._leases.pop(record.job_id, ()):
                lease.release()
            self._operands.pop(record.job_id, None)
            self._finish_streams(record)
            await self._respond(writer, 429, record.snapshot())
            return
        queued_event = {"event": "queued", **record.snapshot()}
        if stream:
            await self._stream_events(writer, record, queued_event)
        elif wait:
            await done.wait()
            await self._respond(writer, 200, record.snapshot())
        else:
            await self._respond(writer, 202, queued_event)
        self._done_events.pop(record.job_id, None)

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             record: JobRecord, first: Dict[str, Any]) -> None:
        """NDJSON event stream: one JSON object per line, connection
        close marks the end (no chunked framing needed)."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        queue = self._event_queues[record.job_id]
        try:
            writer.write((json.dumps(first) + "\n").encode())
            await writer.drain()
            while True:
                event = await queue.get()
                writer.write((json.dumps(event) + "\n").encode())
                await writer.drain()
                if event.get("event") in ("done", "failed", "rejected"):
                    break
        except (ConnectionError, RuntimeError):
            pass  # client went away; the job itself keeps running
        finally:
            self._event_queues.pop(record.job_id, None)

    def _finish_streams(self, record: JobRecord) -> None:
        self._event_queues.pop(record.job_id, None)
        done = self._done_events.get(record.job_id)
        if done is not None:
            done.set()

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       obj: Dict[str, Any]) -> None:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 413: "Payload Too Large",
                  429: "Too Many Requests"}.get(status, "OK")
        body = json.dumps(obj).encode()
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        try:
            await writer.drain()
        except ConnectionError:
            pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        by_state: Dict[str, int] = {}
        for record in self._records.values():
            by_state[record.state.value] = by_state.get(record.state.value, 0) + 1
        peak = self.tracer.gauge_max("host_mem", "reserved")
        return {
            "uptime_seconds": time.monotonic() - self._started,
            "cache": self.cache.stats(),
            "scheduler": self.scheduler.stats(),
            "jobs_by_state": by_state,
            "host_mem_peak_reserved": peak if peak is not None else 0,
        }
