"""Job specs, records, and operand-spec resolution for the server.

A multiply job names two operands and how to run them.  Operand specs
are small JSON objects in one of five forms:

* ``{"suite": "stokes"}`` — a benchmark-suite matrix by name/abbr;
* ``{"path": "m.npz"}`` — an ``.npz``/``.mtx`` file on the server host;
* ``{"gen": {"family": "banded", "n": 512, ...}}`` — a deterministic
  generator invocation (seeded, so the same spec is the same matrix);
* ``{"inline": {"shape": [r, c], "row_offsets": [...], "col_ids":
  [...], "data": [...]}}`` — the matrix shipped in the request body;
* ``{"hash": "<sha256>"}`` — a content address of an operand already in
  the server's cache (uploaded via ``POST /v1/operands`` or left behind
  by an earlier job).

``suite``/``path``/``gen`` specs are deterministic, so their canonical
string (:func:`canonical_spec`) is a valid cache alias: once built, the
server maps spec -> content hash and repeat jobs skip materialization
entirely.  ``inline`` payloads are hashed on arrival; ``hash`` specs
never materialize at all (a cache miss is a client error).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

import numpy as np

from ..sparse import generators
from ..sparse.formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from ..sparse.io import load_npz, read_matrix_market
from ..sparse.suite import SUITE, build_matrix

__all__ = [
    "JobState",
    "JobSpec",
    "JobRecord",
    "canonical_spec",
    "resolve_operand",
]

_job_counter = itertools.count(1)

#: generator families a ``gen`` spec may name, with their argument sets
_GEN_FAMILIES = {
    "banded": ("n", "bandwidth", "seed", "fill"),
    "rmat": ("scale", "degree", "seed"),
    "erdos-renyi": ("n", "avg_degree", "seed"),
    "diagonal-blocks": ("n", "block", "seed", "density"),
}


def canonical_spec(spec: Dict[str, Any]) -> str:
    """Deterministic string form of an operand spec (sorted-key JSON) —
    the cache-alias key for deterministic (non-inline) specs."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def _build_gen(params: Dict[str, Any]) -> CSRMatrix:
    family = params.get("family")
    if family not in _GEN_FAMILIES:
        raise ValueError(
            f"unknown generator family {family!r}; "
            f"choose from {sorted(_GEN_FAMILIES)}"
        )
    allowed = _GEN_FAMILIES[family]
    extra = set(params) - set(allowed) - {"family"}
    if extra:
        raise ValueError(f"unknown {family} parameters: {sorted(extra)}")
    kwargs = {k: params[k] for k in allowed if k in params}
    seed = int(kwargs.pop("seed", 0))
    if family == "banded":
        return generators.banded(
            int(kwargs.pop("n", 512)), int(kwargs.pop("bandwidth", 8)),
            seed=seed, **kwargs,
        )
    if family == "rmat":
        return generators.rmat(
            int(kwargs.pop("scale", 9)), int(kwargs.pop("degree", 8)),
            seed=seed,
        )
    if family == "erdos-renyi":
        return generators.erdos_renyi(
            int(kwargs.pop("n", 512)), float(kwargs.pop("avg_degree", 8.0)),
            seed=seed,
        )
    return generators.diagonal_blocks(
        int(kwargs.pop("n", 512)), int(kwargs.pop("block", 64)),
        seed=seed, **kwargs,
    )


def _build_inline(payload: Dict[str, Any]) -> CSRMatrix:
    try:
        n_rows, n_cols = (int(x) for x in payload["shape"])
        ro = np.asarray(payload["row_offsets"], dtype=INDEX_DTYPE)
        ci = np.asarray(payload["col_ids"], dtype=INDEX_DTYPE)
        da = np.asarray(payload["data"], dtype=VALUE_DTYPE)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed inline operand: {exc}") from exc
    return CSRMatrix(n_rows, n_cols, ro, ci, da)


def resolve_operand(spec: Dict[str, Any]) -> CSRMatrix:
    """Materialize one operand spec (every form except ``hash``, which
    only the server's cache can resolve)."""
    if not isinstance(spec, dict) or len(spec) != 1:
        raise ValueError(
            "an operand spec is one of {'suite': name}, {'path': file}, "
            "{'gen': {...}}, {'inline': {...}}, {'hash': sha256}"
        )
    (kind, value), = spec.items()
    if kind == "suite":
        by_name = {e.name: e.name for e in SUITE}
        by_name.update({e.abbr: e.name for e in SUITE})
        if value not in by_name:
            raise ValueError(f"unknown suite matrix {value!r}")
        return build_matrix(by_name[value])
    if kind == "path":
        if str(value).endswith(".mtx"):
            return read_matrix_market(value)
        if str(value).endswith(".npz"):
            return load_npz(value)
        raise ValueError(f"operand path must be .npz or .mtx, got {value!r}")
    if kind == "gen":
        return _build_gen(dict(value))
    if kind == "inline":
        return _build_inline(value)
    if kind == "hash":
        raise ValueError(
            "a {'hash': ...} operand can only be resolved by the server "
            "cache (upload it first via POST /v1/operands)"
        )
    raise ValueError(f"unknown operand spec kind {kind!r}")


class JobState(str, Enum):
    QUEUED = "queued"        # accepted, waiting in the fair queue
    ADMITTED = "admitted"    # ledger reservation held, awaiting a slot
    RUNNING = "running"      # executing on the worker pool
    DONE = "done"
    FAILED = "failed"
    REJECTED = "rejected"    # quota/validation refusal — never queued


@dataclass
class JobSpec:
    """Validated request payload of one multiply job."""

    a_spec: Dict[str, Any]
    b_spec: Dict[str, Any]
    tenant: str = "default"
    kernel: Optional[str] = None
    backend: Optional[str] = None
    workers: int = 1
    grid: Optional[List[int]] = None   # [row_panels, col_panels]
    return_result: bool = False        # ship the product arrays back
    trace: bool = False                # record + export a per-job trace

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ValueError("job payload must be a JSON object")
        known = {"a", "b", "tenant", "kernel", "backend", "workers",
                 "grid", "return_result", "trace", "stream", "wait"}
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown job fields: {sorted(extra)}")
        if "a" not in payload or "b" not in payload:
            raise ValueError("a job needs operands 'a' and 'b'")
        workers = int(payload.get("workers", 1))
        if workers < 1:
            raise ValueError("workers must be >= 1")
        grid = payload.get("grid")
        if grid is not None:
            grid = [int(x) for x in grid]
            if len(grid) != 2 or min(grid) < 1:
                raise ValueError("grid must be [row_panels, col_panels] >= 1")
        return cls(
            a_spec=payload["a"], b_spec=payload["b"],
            tenant=str(payload.get("tenant", "default")),
            kernel=payload.get("kernel"),
            backend=payload.get("backend"),
            workers=workers, grid=grid,
            return_result=bool(payload.get("return_result", False)),
            trace=bool(payload.get("trace", False)),
        )


@dataclass
class JobRecord:
    """Lifecycle of one accepted job: state machine + timings + result
    summary.  Mutated by the scheduler/runner threads; read by the HTTP
    handlers — all under :attr:`lock`."""

    spec: JobSpec
    job_id: int = field(default_factory=lambda: next(_job_counter))
    state: JobState = JobState.QUEUED
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cost_bytes: int = 0                # estimated footprint charged
    shard: Optional[int] = None        # device shard placement (shards > 1)
    result: Dict[str, Any] = field(default_factory=dict)
    cache_hits: Dict[str, bool] = field(default_factory=dict)
    chunks_done: int = 0
    chunks_total: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def latency_seconds(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view for ``GET /v1/jobs/<id>`` and event payloads."""
        with self.lock:
            out = {
                "job_id": self.job_id,
                "tenant": self.spec.tenant,
                "state": self.state.value,
                "chunks_done": self.chunks_done,
                "chunks_total": self.chunks_total,
                "cost_bytes": self.cost_bytes,
                "cache": dict(self.cache_hits),
            }
            if self.shard is not None:
                out["shard"] = self.shard
            if self.error is not None:
                out["error"] = self.error
            if self.latency_seconds is not None:
                out["latency_seconds"] = self.latency_seconds
            if self.result:
                out["result"] = dict(self.result)
            return out
