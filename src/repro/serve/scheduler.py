"""Cross-job admission control and weighted fair queueing.

The single-run governor polices *chunks* of one run; the server needs
the same discipline one level up, across concurrent *jobs*:

* **admission** reuses :class:`~repro.core.governor.hostmem.\
HostMemoryGovernor` verbatim as a jobs-keyed byte ledger.  Each job is
  charged its estimated peak footprint — operands plus the
  :func:`~repro.spgemm.estimate.estimate_row_nnz`-predicted output —
  before it may start, so N concurrent jobs can never overcommit the
  node's host-memory budget.  The governor's ``host_mem`` gauge stream
  is emitted on the scheduler's tracer, which is how the no-overcommit
  tests assert the ceiling held.  The minimum-progress escape carries
  over too: a job larger than the whole budget runs alone (counted in
  ``overcommits``) instead of deadlocking the queue.
* **ordering** is start-time weighted fair queueing.  Every tenant has
  a :class:`TenantQuota` with a *weight*; a job's virtual finish time is
  ``max(queue vtime, tenant's last finish) + cost / weight``, and the
  dispatch loop always starts the eligible job with the smallest
  virtual finish.  Cost is the same estimated footprint admission
  charges, so a tenant submitting huge jobs advances its virtual clock
  faster and yields the node to lighter tenants — weighted max-min
  fairness in bytes, not job counts.  Per-tenant ``max_concurrent``
  bounds how many of one tenant's jobs hold slots at once and
  ``max_queued`` bounds its backlog (excess submissions are rejected
  up front, the only non-queue outcome).

The scheduler runs a plain background thread (no event-loop coupling —
the asyncio server talks to it through thread-safe calls and receives
events via a thread-safe callback), dispatching jobs onto a shared
bounded :class:`~concurrent.futures.ThreadPoolExecutor`; each job's run
is re-entrant engine work with per-run tracer/governor state, so many
grids execute concurrently in one process.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.governor.hostmem import HostMemoryGovernor
from ..distributed.sharding import ShardPlacement
from .jobs import JobRecord, JobState

__all__ = ["TenantQuota", "FairQueue", "JobScheduler"]

#: default cross-job host-memory budget (matches the paper's assembly
#: budget scaled to test hosts; ``repro serve`` exposes --host-mem)
DEFAULT_HOST_BUDGET = 2 << 30


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant scheduling contract."""

    weight: float = 1.0        # fair-queue share (bigger = more bytes/sec)
    max_concurrent: int = 4    # jobs of this tenant running at once
    max_queued: int = 256      # backlog bound; beyond it submissions reject

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("tenant weight must be > 0")
        if self.max_concurrent < 1 or self.max_queued < 1:
            raise ValueError("tenant quotas must be >= 1")


class FairQueue:
    """Start-time weighted fair queue of job records.

    Not thread-safe on its own — the scheduler serializes access under
    its condition lock.  ``pop_eligible`` returns the smallest-virtual-
    finish job whose tenant passes the caller's eligibility predicate,
    leaving ineligible jobs queued in order.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, JobRecord]] = []
        self._seq = itertools.count()
        self.vtime = 0.0
        self._tenant_vf: Dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def queued_for(self, tenant: str) -> int:
        return sum(1 for _, _, r in self._heap if r.spec.tenant == tenant)

    def push(self, record: JobRecord, cost: float, weight: float) -> float:
        """Enqueue with virtual finish ``max(vtime, tenant vf) + cost/weight``
        (returned, mainly for tests)."""
        start = max(self.vtime, self._tenant_vf.get(record.spec.tenant, 0.0))
        vf = start + max(cost, 1.0) / weight
        self._tenant_vf[record.spec.tenant] = vf
        heapq.heappush(self._heap, (vf, next(self._seq), record))
        return vf

    def requeue_front(self, item: Tuple[float, int, JobRecord]) -> None:
        """Put back a popped-but-not-dispatched job with its original
        virtual finish (admission denied; it stays at the head)."""
        heapq.heappush(self._heap, item)

    def pop_eligible(
        self, eligible: Callable[[JobRecord], bool]
    ) -> Optional[Tuple[float, int, JobRecord]]:
        """Pop the lowest-virtual-finish job with ``eligible(record)``.

        Skipped (ineligible) jobs keep their positions.  Advances the
        queue's virtual time to the popped job's virtual finish."""
        skipped: List[Tuple[float, int, JobRecord]] = []
        found = None
        while self._heap:
            item = heapq.heappop(self._heap)
            if eligible(item[2]):
                found = item
                break
            skipped.append(item)
        for item in skipped:
            heapq.heappush(self._heap, item)
        if found is not None:
            self.vtime = max(self.vtime, found[0])
        return found


class JobScheduler:
    """Admission + fair dispatch of jobs onto a shared worker pool.

    ``runner(record)`` executes one job synchronously on a pool thread
    (the server supplies it); it must set the record's terminal state
    and never raise.  ``on_event(record, event)`` is the thread-safe
    progress callback (events: ``admitted``, ``started`` are emitted
    here; the runner emits ``chunk`` and terminal events itself).

    ``shards`` splits the worker slots into per-shard pools — N
    simulated devices serving one job mix.  Each admitted job is placed
    on the least-loaded shard (:class:`~repro.distributed.sharding.\
    ShardPlacement`) and runs on that shard's pool; admission stays
    global, so the shards still share one node host-memory ledger.
    ``shards=1`` is exactly the previous single-pool scheduler.
    """

    def __init__(
        self,
        runner: Callable[[JobRecord], None],
        *,
        slots: int = 4,
        host_budget_bytes: int = DEFAULT_HOST_BUDGET,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        on_event: Optional[Callable[[JobRecord, Dict[str, Any]], None]] = None,
        tracer=None,
        shards: int = 1,
    ) -> None:
        if slots < 1:
            raise ValueError("scheduler needs >= 1 slots")
        if shards < 1:
            raise ValueError("scheduler needs >= 1 shards")
        self._runner = runner
        self.slots = int(slots)
        self.shards = int(shards)
        self.hostmem = HostMemoryGovernor(host_budget_bytes, tracer=tracer)
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota or TenantQuota()
        self._on_event = on_event
        self._cond = threading.Condition()
        self._queue = FairQueue()
        self._running: Dict[int, JobRecord] = {}
        self._running_by_tenant: Dict[str, int] = {}
        self.placement = ShardPlacement(self.shards)
        # wired to a transport pool's on_worker_lost: a remote shard
        # whose worker died stops receiving new jobs until marked up
        per_shard = max(1, self.slots // self.shards)
        self._pools = [
            ThreadPoolExecutor(
                max_workers=per_shard,
                thread_name_prefix=f"serve-job-s{t}",
            )
            for t in range(self.shards)
        ]
        self._thread: Optional[threading.Thread] = None
        self._stopped = False
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _emit(self, record: JobRecord, event: Dict[str, Any]) -> None:
        if self._on_event is not None:
            try:
                self._on_event(record, event)
            except Exception:
                pass

    # ------------------------------------------------------------------
    # submission (any thread)
    # ------------------------------------------------------------------
    def submit(self, record: JobRecord) -> Tuple[bool, Optional[str]]:
        """Enqueue one job.  Returns ``(accepted, reject_reason)`` —
        the only refusal is a tenant exceeding its ``max_queued``."""
        quota = self.quota_for(record.spec.tenant)
        with self._cond:
            if self._stopped:
                return False, "scheduler is shut down"
            if self._queue.queued_for(record.spec.tenant) >= quota.max_queued:
                self.rejected += 1
                record.state = JobState.REJECTED
                record.error = (
                    f"tenant {record.spec.tenant!r} backlog exceeds "
                    f"max_queued={quota.max_queued}"
                )
                return False, record.error
            self.submitted += 1
            self._queue.push(record, float(record.cost_bytes), quota.weight)
            self._cond.notify_all()
        return True, None

    # ------------------------------------------------------------------
    # dispatch loop (own thread)
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="serve-scheduler", daemon=True
            )
            self._thread.start()

    def _eligible(self, record: JobRecord) -> bool:
        quota = self.quota_for(record.spec.tenant)
        return (self._running_by_tenant.get(record.spec.tenant, 0)
                < quota.max_concurrent)

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopped and not self._dispatchable():
                    self._cond.wait(0.05)
                if self._stopped:
                    return
                item = self._queue.pop_eligible(self._eligible)
                if item is None:
                    continue
                record = item[2]
                # jobs-keyed ledger: reserve the estimated footprint.
                # Non-blocking — the loop must keep serving other
                # tenants — with the minimum-progress escape when the
                # node is idle (ledger empty => may_wait=True returns
                # immediately as a counted overcommit).
                ok = self.hostmem.admit(record.job_id, record.cost_bytes,
                                        may_wait=False)
                if not ok and not self._running:
                    ok = self.hostmem.admit(record.job_id, record.cost_bytes,
                                            may_wait=True)
                if not ok:
                    self._queue.requeue_front(item)
                    self._cond.wait(0.05)
                    continue
                shard = self.placement.pick(record.cost_bytes)
                with record.lock:
                    record.state = JobState.ADMITTED
                    record.shard = shard
                self._running[record.job_id] = record
                tenant = record.spec.tenant
                self._running_by_tenant[tenant] = (
                    self._running_by_tenant.get(tenant, 0) + 1
                )
            self._emit(record, {"event": "admitted",
                                "job_id": record.job_id,
                                "reserved_bytes": record.cost_bytes,
                                "shard": shard})
            self._pools[shard].submit(self._run_one, record)

    def _dispatchable(self) -> bool:
        return len(self._queue) > 0 and len(self._running) < self.slots

    def _run_one(self, record: JobRecord) -> None:
        self._emit(record, {"event": "started", "job_id": record.job_id})
        try:
            self._runner(record)
        except Exception as exc:  # the runner's own guard failed
            with record.lock:
                record.state = JobState.FAILED
                record.error = f"{type(exc).__name__}: {exc}"
        finally:
            self.hostmem.release(record.job_id)
            if record.shard is not None:
                self.placement.release(record.shard, record.cost_bytes)
            with self._cond:
                self._running.pop(record.job_id, None)
                tenant = record.spec.tenant
                left = self._running_by_tenant.get(tenant, 1) - 1
                if left > 0:
                    self._running_by_tenant[tenant] = left
                else:
                    self._running_by_tenant.pop(tenant, None)
                if record.state is JobState.FAILED:
                    self.failed += 1
                else:
                    self.completed += 1
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def set_shard_health(self, shard: int, up: bool) -> None:
        """Mark one shard placeable (``up=True``) or not.

        The remote-transport hook: bind a pool's ``on_worker_lost`` to
        ``lambda wid, reason: scheduler.set_shard_health(wid, False)``
        and new jobs steer away from the dead worker's shard while
        running jobs drain normally."""
        if not 0 <= int(shard) < self.shards:
            raise ValueError(f"shard {shard} outside 0..{self.shards - 1}")
        if up:
            self.placement.mark_up(shard)
        else:
            self.placement.mark_down(shard)

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "slots": self.slots,
                "shards": self.shards,
                "placement": self.placement.snapshot(),
                "queued": len(self._queue),
                "running": len(self._running),
                "submitted": self.submitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "host_budget_bytes": self.hostmem.budget_bytes,
                "host_reserved_bytes": sum(
                    self.hostmem._reserved.values()
                ),
                "host_peak_bytes": self.hostmem.peak_bytes,
                "overcommits": self.hostmem.overcommits,
            }

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until queue and slots drain (tests / bench)."""
        end = time.monotonic() + timeout
        with self._cond:
            while len(self._queue) or self._running:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.05))
        return True

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for pool in self._pools:
            pool.shutdown(wait=True)
