"""Minimal async client for the job server.

Speaks the server's one-request-per-connection HTTP/1.1 dialect over
asyncio streams (TCP or unix socket) — enough for the load-test
harness, the CI smoke driver, and the tests, with zero dependencies.

Wait-mode submission (the default) resolves to the final job snapshot;
:meth:`ServeClient.stream_job` yields the NDJSON event feed
(``queued`` ... ``chunk`` ... ``done``) as the server emits it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Optional, Tuple

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServeClient:
    """One server endpoint: ``ServeClient(host, port)`` or
    ``ServeClient(unix_socket=path)``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 unix_socket: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.unix_socket = unix_socket

    async def _connect(self) -> Tuple[asyncio.StreamReader,
                                      asyncio.StreamWriter]:
        if self.unix_socket:
            return await asyncio.open_unix_connection(self.unix_socket)
        return await asyncio.open_connection(self.host, self.port)

    async def _send(self, writer: asyncio.StreamWriter, method: str,
                    path: str, payload: Optional[Dict[str, Any]]) -> None:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader
                         ) -> Tuple[int, Dict[str, str]]:
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        return status, headers

    async def request(self, method: str, path: str,
                      payload: Optional[Dict[str, Any]] = None
                      ) -> Dict[str, Any]:
        """One JSON request/response round trip.  Raises
        :class:`ServeError` on non-2xx."""
        reader, writer = await self._connect()
        try:
            await self._send(writer, method, path, payload)
            status, headers = await self._read_head(reader)
            length = int(headers.get("content-length", 0) or 0)
            raw = await reader.readexactly(length) if length \
                else await reader.read()
            obj = json.loads(raw or b"{}")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
        if status >= 400:
            raise ServeError(status, obj)
        return obj

    # ------------------------------------------------------------------
    # the API surface
    # ------------------------------------------------------------------
    async def health(self) -> Dict[str, Any]:
        return await self.request("GET", "/v1/health")

    async def stats(self) -> Dict[str, Any]:
        return await self.request("GET", "/v1/stats")

    async def job(self, job_id: int) -> Dict[str, Any]:
        return await self.request("GET", f"/v1/jobs/{job_id}")

    async def upload_operand(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Materialize + cache an operand; returns ``{"hash", "cached"}``."""
        return await self.request("POST", "/v1/operands", {"spec": spec})

    async def submit_job(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Wait-mode submission: resolves to the final job snapshot."""
        return await self.request("POST", "/v1/jobs", payload)

    async def stream_job(self, payload: Dict[str, Any]
                         ) -> AsyncIterator[Dict[str, Any]]:
        """Submit with ``stream=true`` and yield each NDJSON event."""
        payload = dict(payload)
        payload["stream"] = True
        reader, writer = await self._connect()
        try:
            await self._send(writer, "POST", "/v1/jobs", payload)
            status, headers = await self._read_head(reader)
            if "ndjson" not in headers.get("content-type", ""):
                length = int(headers.get("content-length", 0) or 0)
                raw = await reader.readexactly(length) if length \
                    else await reader.read()
                raise ServeError(status, json.loads(raw or b"{}"))
            while True:
                line = await reader.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
