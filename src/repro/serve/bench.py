"""``repro serve-bench``: the serving load-test harness.

Drives the job server with two equal-size workloads through a real
socket and records the serving-layer headline numbers to
``BENCH_serve.json``:

* **cold** — every job names operands with a *unique* generator seed,
  so no job can ever reuse another's operand: the content-addressed
  cache contributes nothing and every operand is materialized from
  scratch.  This is the no-sharing baseline.
* **warm** — the same number of jobs drawing operands from a small
  shared pool (the repeated-operand workload the server exists for):
  after the first touch of each pool entry, every resolution is a
  zero-copy cache attach.

Both phases submit all their jobs *concurrently* (one wait-mode request
per job, all in flight at once); the scheduler's slot pool and the
cross-job ledger do the pacing.  Per-job latency is measured client
side, submission to final snapshot.  The oracle check recomputes every
distinct operand pair through the single-run engine locally and
compares CRC32 fingerprints with the served results — bit-identity,
not approximation.

The bench also asserts the serving invariants it records: the host-mem
ledger's peak stays within budget (forced minimum-progress admissions
are counted separately as ``overcommits``), and the warm workload's
hit rate and throughput gain over cold are the acceptance numbers.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..core.assemble import assemble_chunks
from ..core.chunks import ChunkGrid
from ..core.executor import execute_chunk_grid
from ..core.governor.integrity import crc32_matrix
from ..core.verify import verify_product
from .client import ServeClient
from .jobs import resolve_operand
from .scheduler import TenantQuota
from .server import ServerConfig, SpgemmServer

__all__ = ["run_serve_bench"]


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[idx]


def _operand_spec(seed: int, *, scale: int, degree: int) -> Dict[str, Any]:
    # rmat: generation is real work (recursive edge sampling + dedup),
    # so skipping it on a cache hit moves the needle
    return {"gen": {"family": "rmat", "scale": scale, "degree": degree,
                    "seed": seed}}


def _build_payloads(jobs: int, tenants: int, pool: List[Dict[str, Any]],
                    *, workers: int, backend: Optional[str],
                    unique_base: Optional[int] = None
                    ) -> List[Dict[str, Any]]:
    """One payload per job.  With ``unique_base`` set, every job gets
    fresh unique-seed operands (the cold workload); otherwise operands
    cycle through the shared pool (the repeated-operand workload)."""
    payloads = []
    n = len(pool)
    for i in range(jobs):
        if unique_base is not None:
            a = _operand_spec(unique_base + 2 * i,
                              **pool[0]["gen_params"])
            b = _operand_spec(unique_base + 2 * i + 1,
                              **pool[0]["gen_params"])
        else:
            a = pool[i % n]["spec"]
            b = pool[(i // n) % n]["spec"]
        payloads.append({
            "a": a, "b": b,
            "tenant": f"tenant{i % tenants}",
            "workers": workers,
            **({"backend": backend} if backend else {}),
        })
    return payloads


def _local_crc(a_spec: Dict[str, Any], b_spec: Dict[str, Any],
               *, oracle_scipy: bool) -> int:
    """The single-run engine's answer for one operand pair (the
    bit-identity reference), optionally scipy-verified too."""
    a = resolve_operand(a_spec)
    b = resolve_operand(b_spec)
    rp = min(4, max(1, a.n_rows // 256))
    grid = ChunkGrid.regular(a.n_rows, b.n_cols, rp, 1)
    _, outputs = execute_chunk_grid(a, b, grid, keep_outputs=True)
    matrix = assemble_chunks(outputs)
    if oracle_scipy:
        verify_product(matrix, a, b)
    return crc32_matrix(matrix)


async def _drive_phase(
    name: str,
    payloads: List[Dict[str, Any]],
    *,
    slots: int,
    host_mem_bytes: int,
    cache_bytes: int,
    quotas: Dict[str, TenantQuota],
    url: Optional[Tuple[str, int]] = None,
) -> Dict[str, Any]:
    """Run one workload against a fresh in-process server (or ``url``)
    and reduce it to phase metrics."""
    server = None
    if url is None:
        server = SpgemmServer(ServerConfig(
            slots=slots, host_mem_bytes=host_mem_bytes,
            cache_bytes=cache_bytes, quotas=quotas,
        ))
        await server.start()
        host, port = server.address
    else:
        host, port = url
    client = ServeClient(host, port)

    async def one(payload: Dict[str, Any]) -> Tuple[float, Dict[str, Any]]:
        t0 = time.perf_counter()
        snap = await client.submit_job(payload)
        return time.perf_counter() - t0, snap

    wall0 = time.perf_counter()
    outcomes = await asyncio.gather(*(one(p) for p in payloads))
    wall = time.perf_counter() - wall0
    stats = await client.stats()
    if server is not None:
        await server.stop()

    latencies = sorted(lat for lat, _ in outcomes)
    snapshots = [snap for _, snap in outcomes]
    failed = [s for s in snapshots if s.get("state") != "done"]
    cache = stats["cache"]
    return {
        "phase": name,
        "jobs": len(payloads),
        "failed": len(failed),
        "wall_seconds": wall,
        "jobs_per_second": len(payloads) / wall if wall > 0 else 0.0,
        "latency_p50_seconds": _percentile(latencies, 0.50),
        "latency_p99_seconds": _percentile(latencies, 0.99),
        "latency_mean_seconds": sum(latencies) / len(latencies)
        if latencies else 0.0,
        "cache_hit_rate": cache["hit_rate"],
        "cache_hits": cache["hits"],
        "cache_misses": cache["misses"],
        "cache_evictions": cache["evictions"],
        "host_mem_peak_reserved": stats["host_mem_peak_reserved"],
        "host_budget_bytes": stats["scheduler"]["host_budget_bytes"],
        "overcommits": stats["scheduler"]["overcommits"],
        "snapshots": snapshots,
    }


def run_serve_bench(
    *,
    jobs: int = 120,
    tenants: int = 4,
    operands: int = 6,
    slots: int = 4,
    workers: int = 1,
    backend: Optional[str] = None,
    scale: int = 9,
    degree: int = 8,
    host_mem_bytes: int = 1 << 30,
    cache_bytes: int = 256 << 20,
    oracle: bool = True,
    oracle_scipy: bool = False,
    max_oracle_pairs: int = 64,
    out: str = "BENCH_serve.json",
) -> Dict[str, Any]:
    """Run the full serving bench and write/print the record.

    Returns the payload written to ``out``.  Exits nonzero via the CLI
    wrapper when the oracle finds a CRC mismatch or the ledger breaches
    its budget without an accounted overcommit.
    """
    pool = [{
        "spec": _operand_spec(seed, scale=scale, degree=degree),
        "gen_params": {"scale": scale, "degree": degree},
    } for seed in range(operands)]
    quotas = {f"tenant{i}": TenantQuota(weight=1.0 + (i % 2),
                                        max_concurrent=max(2, slots),
                                        max_queued=max(64, jobs))
              for i in range(tenants)}

    warm_payloads = _build_payloads(jobs, tenants, pool,
                                    workers=workers, backend=backend)
    cold_payloads = _build_payloads(jobs, tenants, pool,
                                    workers=workers, backend=backend,
                                    unique_base=10_000)

    async def _run() -> Tuple[Dict[str, Any], Dict[str, Any]]:
        cold = await _drive_phase(
            "cold", cold_payloads, slots=slots,
            host_mem_bytes=host_mem_bytes, cache_bytes=cache_bytes,
            quotas=quotas,
        )
        warm = await _drive_phase(
            "warm", warm_payloads, slots=slots,
            host_mem_bytes=host_mem_bytes, cache_bytes=cache_bytes,
            quotas=quotas,
        )
        return cold, warm

    cold, warm = asyncio.run(_run())

    # ------------------------------------------------------------------
    # oracle: every distinct warm pair (and a cold sample) must match
    # the single-run engine bit for bit
    # ------------------------------------------------------------------
    oracle_report: Dict[str, Any] = {"enabled": oracle}
    if oracle:
        served: Dict[str, Tuple[Dict, Dict, List[int]]] = {}
        for phase in (warm, cold):
            for payload, snap in zip(
                warm_payloads if phase is warm else cold_payloads,
                phase["snapshots"],
            ):
                if snap.get("state") != "done":
                    continue
                key = json.dumps([payload["a"], payload["b"]],
                                 sort_keys=True)
                served.setdefault(
                    key, (payload["a"], payload["b"], [])
                )[2].append(snap["result"]["crc32"])
        mismatches = 0
        checked = 0
        for key, (a_spec, b_spec, crcs) in list(served.items()):
            if checked >= max_oracle_pairs:
                break
            checked += 1
            expected = _local_crc(a_spec, b_spec, oracle_scipy=oracle_scipy)
            if any(crc != expected for crc in crcs):
                mismatches += 1
        oracle_report.update({
            "distinct_pairs": len(served),
            "pairs_checked": checked,
            "served_results_checked": sum(
                len(v[2]) for v in list(served.values())[:checked]
            ),
            "mismatches": mismatches,
            "scipy_verified": oracle_scipy,
        })

    within_budget = (
        warm["host_mem_peak_reserved"] <= warm["host_budget_bytes"]
        or warm["overcommits"] > 0
    ) and (
        cold["host_mem_peak_reserved"] <= cold["host_budget_bytes"]
        or cold["overcommits"] > 0
    )

    for phase in (cold, warm):
        del phase["snapshots"]  # bulky; the record keeps the reductions

    payload = {
        "bench": "serve",
        "units": {
            "latency_*_seconds": "seconds",
            "wall_seconds": "seconds",
            "jobs_per_second": "jobs/s",
            "*_bytes": "bytes",
            "cache_hit_rate": "fraction of operand resolutions served "
                              "from the content-addressed cache",
        },
        "config": {
            "jobs_per_phase": jobs, "tenants": tenants,
            "operand_pool": operands, "slots": slots, "workers": workers,
            "backend": backend or "default",
            "operand": {"family": "rmat", "scale": scale, "degree": degree},
            "host_mem_bytes": host_mem_bytes, "cache_bytes": cache_bytes,
        },
        "phases": {"cold": cold, "warm": warm},
        "warm_hit_rate": warm["cache_hit_rate"],
        "throughput_gain_warm_over_cold": (
            warm["jobs_per_second"] / cold["jobs_per_second"]
            if cold["jobs_per_second"] > 0 else 0.0
        ),
        "ledger_within_budget": within_budget,
        "oracle": oracle_report,
    }

    _print_report(payload, out)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    return payload


def _print_report(payload: Dict[str, Any], out: str) -> None:
    cold = payload["phases"]["cold"]
    warm = payload["phases"]["warm"]
    print(f"{'phase':<6} {'jobs':>5} {'fail':>5} {'p50 ms':>9} "
          f"{'p99 ms':>9} {'jobs/s':>8} {'hit rate':>9}")
    for phase in (cold, warm):
        print(f"{phase['phase']:<6} {phase['jobs']:>5} {phase['failed']:>5} "
              f"{phase['latency_p50_seconds'] * 1e3:>9.1f} "
              f"{phase['latency_p99_seconds'] * 1e3:>9.1f} "
              f"{phase['jobs_per_second']:>8.1f} "
              f"{phase['cache_hit_rate']:>9.3f}")
    gain = payload["throughput_gain_warm_over_cold"]
    print(f"warm-over-cold throughput: {gain:.2f}x | ledger within budget: "
          f"{payload['ledger_within_budget']}")
    oracle = payload["oracle"]
    if oracle.get("enabled"):
        print(f"oracle: {oracle['served_results_checked']} served results "
              f"over {oracle['pairs_checked']} operand pairs, "
              f"{oracle['mismatches']} mismatches")

    # compare against the previous record at --out, if one exists; a
    # fresh clone (or a corrupt file) has no baseline and that is fine
    baseline = None
    if os.path.exists(out):
        try:
            with open(out) as fh:
                baseline = json.load(fh)
        except (json.JSONDecodeError, OSError):
            baseline = None
    if baseline and "phases" in baseline:
        prev_warm = baseline["phases"].get("warm", {})
        prev_jps = prev_warm.get("jobs_per_second")
        prev_p50 = prev_warm.get("latency_p50_seconds")
        prev_hit = baseline.get("warm_hit_rate")
        if prev_jps:
            print(f"warm throughput vs previous record: "
                  f"{warm['jobs_per_second'] / prev_jps:.2f}x "
                  f"({prev_jps:.1f} -> {warm['jobs_per_second']:.1f} jobs/s)")
        if prev_p50:
            print(f"warm p50 vs previous record: "
                  f"{prev_p50 * 1e3:.1f} -> "
                  f"{warm['latency_p50_seconds'] * 1e3:.1f} ms")
        if prev_hit is not None:
            print(f"warm hit rate vs previous record: "
                  f"{prev_hit:.3f} -> {payload['warm_hit_rate']:.3f}")
    else:
        print(f"no previous serving record at {out}; writing a fresh baseline")
