"""Chunk stores and the checkpoint run manifest.

The paper assembles arriving chunks in (128 GB of) host memory.  When the
output exceeds even the host, chunks must spill to storage — the natural
next rung of the out-of-core ladder.  Two stores share one interface:

``MemoryChunkStore``
    the paper's behaviour: chunks held as CSR matrices in host memory.
``DiskChunkStore``
    each chunk written to a compressed ``.npz`` as it "arrives" and
    re-loaded lazily; peak host memory stays at one chunk.  A store
    pointed at a directory that already holds chunk files *adopts* them
    — which is how a resumed run finds the chunks a previous (killed)
    run already produced.

Both assemble into the full matrix on demand, and both are accepted by
:func:`repro.core.api.run_out_of_core` via the ``chunk_store`` argument.

:class:`RunManifest` is the checkpoint: a JSON file recording the run's
identity (a fresh run id plus a SHA-256 hash of the operands and the
chunk grid) and, incrementally, the full :class:`~repro.core.chunks.\
ChunkStats` record of every completed chunk.  The executor's sink marks
a chunk done only *after* its store write, so the manifest never points
at data that was not durably written; every rewrite is atomic (temp file
+ ``os.replace``), so a kill mid-write leaves the previous good
manifest.  ``run_out_of_core(..., resume=manifest)`` validates the hash
and recomputes only the chunks the manifest does not record.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import uuid
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..observability import as_tracer
from ..sparse.formats import CSRMatrix
from ..sparse.io import load_npz, save_npz
from .chunks import STAT_FIELDS, ChunkGrid, ChunkStats

__all__ = [
    "MemoryChunkStore",
    "DiskChunkStore",
    "RunManifest",
    "ManifestMismatch",
    "operand_grid_hash",
]


class MemoryChunkStore:
    """Chunks kept in host memory (the paper's configuration).

    ``tracer`` (:mod:`repro.observability`) records per-chunk ``put`` /
    ``get`` latency spans and samples the bytes held by the store after
    every put — the "chunk-store bytes" gauge of the pipeline trace.
    """

    def __init__(self, *, tracer=None) -> None:
        self._chunks: Dict[Tuple[int, int], CSRMatrix] = {}
        self._shape: Optional[Tuple[int, int]] = None  # (row panels, col panels)
        # the parallel chunk executor streams arrivals from worker threads
        self._lock = threading.Lock()
        self._tracer = as_tracer(tracer)
        self._held_bytes = 0  # maintained incrementally; nbytes() is O(n)

    def put(self, row_panel: int, col_panel: int, chunk: CSRMatrix) -> None:
        with self._tracer.span(f"store_put[{row_panel},{col_panel}]", "store",
                               bytes=chunk.nbytes() if self._tracer.enabled else 0):
            with self._lock:
                prev = self._chunks.get((row_panel, col_panel))
                if prev is not None:
                    self._held_bytes -= prev.nbytes()
                self._chunks[(row_panel, col_panel)] = chunk
                self._held_bytes += chunk.nbytes()
                self._grow_shape(row_panel, col_panel)
        if self._tracer.enabled:
            self._tracer.gauge("chunk_store_bytes", held=self._held_bytes)

    def _grow_shape(self, row_panel: int, col_panel: int) -> None:
        rs = max(row_panel + 1, self._shape[0] if self._shape else 0)
        cs = max(col_panel + 1, self._shape[1] if self._shape else 0)
        self._shape = (rs, cs)

    def get(self, row_panel: int, col_panel: int) -> CSRMatrix:
        with self._tracer.span(f"store_get[{row_panel},{col_panel}]", "store"):
            return self._chunks[(row_panel, col_panel)]

    def __len__(self) -> int:
        return len(self._chunks)

    def keys(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._chunks))

    def grid_shape(self) -> Tuple[int, int]:
        if self._shape is None:
            raise ValueError("store is empty")
        return self._shape

    def assemble(self) -> CSRMatrix:
        """The full output matrix (requires a complete grid)."""
        from .assemble import assemble_chunks

        rows, cols = self.grid_shape()
        missing = [
            (i, j) for i in range(rows) for j in range(cols)
            if (i, j) not in self._chunks
        ]
        if missing:
            raise ValueError(f"incomplete chunk grid; missing {missing[:4]}...")
        return assemble_chunks(
            [[self.get(i, j) for j in range(cols)] for i in range(rows)]
        )

    def nbytes(self) -> int:
        """Host memory held by the stored chunks."""
        return sum(c.nbytes() for c in self._chunks.values())

    def close(self) -> None:  # symmetry with the disk store
        self._chunks.clear()


class DiskChunkStore(MemoryChunkStore):
    """Chunks spilled to per-chunk ``.npz`` files under a directory.

    ``put`` writes and releases the chunk immediately; ``get`` re-loads.
    The directory is created on demand (a temporary one when not given)
    and removed by :meth:`close`.

    Chunk files already present in the directory are **adopted** (their
    panel coordinates parsed back from the filenames): a resumed run
    pointed at the previous run's spill directory serves the completed
    chunks from disk and only writes the ones it recomputes.
    """

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 tracer=None) -> None:
        super().__init__(tracer=tracer)
        self._own_dir = directory is None
        self._dir = Path(directory) if directory else Path(tempfile.mkdtemp(prefix="repro-chunks-"))
        self._dir.mkdir(parents=True, exist_ok=True)
        self._paths: Dict[Tuple[int, int], Path] = {}
        for path in sorted(self._dir.glob("chunk_*_*.npz")):
            try:
                rp, cp = map(int, path.stem.split("_")[1:3])
            except ValueError:
                continue  # not one of ours
            self._paths[(rp, cp)] = path
            self._grow_shape(rp, cp)

    @property
    def directory(self) -> Path:
        """The spill directory (recorded in checkpoint manifests)."""
        return self._dir

    def _path(self, row_panel: int, col_panel: int) -> Path:
        return self._dir / f"chunk_{row_panel}_{col_panel}.npz"

    def put(self, row_panel: int, col_panel: int, chunk: CSRMatrix) -> None:
        path = self._path(row_panel, col_panel)
        with self._tracer.span(f"store_put[{row_panel},{col_panel}]", "store",
                               bytes=chunk.nbytes() if self._tracer.enabled else 0):
            save_npz(path, chunk)  # distinct per-chunk file; write needs no lock
            with self._lock:
                self._paths[(row_panel, col_panel)] = path
                self._grow_shape(row_panel, col_panel)
        if self._tracer.enabled:
            self._tracer.gauge("chunk_store_bytes", held=self.nbytes())

    def get(self, row_panel: int, col_panel: int) -> CSRMatrix:
        with self._tracer.span(f"store_get[{row_panel},{col_panel}]", "store"):
            return load_npz(self._paths[(row_panel, col_panel)])

    def __len__(self) -> int:
        return len(self._paths)

    def keys(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._paths))

    def assemble(self) -> CSRMatrix:
        from .assemble import assemble_chunks

        rows, cols = self.grid_shape()
        missing = [
            (i, j) for i in range(rows) for j in range(cols)
            if (i, j) not in self._paths
        ]
        if missing:
            raise ValueError(f"incomplete chunk grid; missing {missing[:4]}...")
        return assemble_chunks(
            [[self.get(i, j) for j in range(cols)] for i in range(rows)]
        )

    def nbytes(self) -> int:
        """Bytes on disk (compressed)."""
        return sum(p.stat().st_size for p in self._paths.values())

    def close(self) -> None:
        for p in self._paths.values():
            p.unlink(missing_ok=True)
        self._paths.clear()
        if self._own_dir:
            try:
                self._dir.rmdir()
            except OSError:
                pass


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
class ManifestMismatch(ValueError):
    """A manifest does not belong to the (operands, grid) being resumed."""


def operand_grid_hash(a: CSRMatrix, b: CSRMatrix, grid: ChunkGrid) -> str:
    """SHA-256 fingerprint binding a manifest to its exact computation.

    Hashes the full CSR content of both operands plus the grid bounds —
    a resumed run with different inputs (or a different partitioning)
    must be rejected, not silently mixed with stale chunks.
    """
    h = hashlib.sha256()
    for mat in (a, b):
        h.update(repr(mat.shape).encode())
        for arr in (mat.row_offsets, mat.col_ids, mat.data):
            h.update(arr.tobytes())
    h.update(grid.row_bounds.tobytes())
    h.update(grid.col_bounds.tobytes())
    return h.hexdigest()


class RunManifest:
    """Incremental JSON checkpoint of one chunk-grid execution.

    Created by :meth:`create` at run start and handed to the executor,
    which calls :meth:`mark_done` *after* each chunk's durable sink
    write.  Every update rewrites the file atomically, so the manifest on
    disk is always a consistent prefix of the run.  :meth:`load` +
    :meth:`validate` + :meth:`completed_stats` drive the resume path.

    Thread-safe: lane threads complete chunks concurrently (the executor
    additionally serializes sink writes, but the manifest does not rely
    on that).
    """

    VERSION = 1

    def __init__(self, path: os.PathLike, header: dict,
                 completed: Optional[Dict[int, ChunkStats]] = None) -> None:
        self.path = Path(path)
        self._header = header
        self._completed: Dict[int, ChunkStats] = dict(completed or {})
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: os.PathLike, a: CSRMatrix, b: CSRMatrix,
               grid: ChunkGrid, *,
               store_dir: Optional[os.PathLike] = None) -> "RunManifest":
        """Start a fresh manifest for ``C = A x B`` over ``grid`` and
        write it (with zero completed chunks) immediately."""
        header = {
            "version": cls.VERSION,
            "run_id": uuid.uuid4().hex,
            "grid_hash": operand_grid_hash(a, b, grid),
            "num_chunks": grid.num_chunks,
            "row_bounds": grid.row_bounds.tolist(),
            "col_bounds": grid.col_bounds.tolist(),
            "store_dir": str(store_dir) if store_dir is not None else None,
        }
        manifest = cls(path, header)
        manifest._write()
        return manifest

    @classmethod
    def load(cls, path: os.PathLike) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        version = payload.get("version")
        if version != cls.VERSION:
            raise ManifestMismatch(
                f"unsupported manifest version {version!r} in {path}"
            )
        header = {k: payload[k] for k in (
            "version", "run_id", "grid_hash", "num_chunks",
            "row_bounds", "col_bounds", "store_dir",
        )}
        completed = {
            int(cid): ChunkStats(**record)
            for cid, record in payload.get("chunks", {}).items()
        }
        return cls(path, header, completed)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def run_id(self) -> str:
        return self._header["run_id"]

    @property
    def num_chunks(self) -> int:
        return int(self._header["num_chunks"])

    @property
    def store_dir(self) -> Optional[str]:
        return self._header["store_dir"]

    @property
    def grid(self) -> ChunkGrid:
        return ChunkGrid(
            row_bounds=np.asarray(self._header["row_bounds"], dtype=np.int64),
            col_bounds=np.asarray(self._header["col_bounds"], dtype=np.int64),
        )

    def validate(self, a: CSRMatrix, b: CSRMatrix, grid: ChunkGrid) -> None:
        """Reject a manifest recorded for different operands or grid."""
        actual = operand_grid_hash(a, b, grid)
        if actual != self._header["grid_hash"]:
            raise ManifestMismatch(
                f"manifest {self.path} (run {self.run_id}) was recorded "
                "for different operands or a different chunk grid — "
                "refusing to resume against it"
            )

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    def mark_done(self, stats: ChunkStats) -> None:
        """Record one completed chunk and persist the manifest atomically.

        The executor calls this after the chunk's sink write, under the
        sink lock — completion on disk implies the data is on disk."""
        with self._lock:
            self._completed[stats.chunk_id] = stats
            self._write()

    def completed_stats(self) -> Dict[int, ChunkStats]:
        """``{chunk_id: ChunkStats}`` of every recorded chunk."""
        with self._lock:
            return dict(self._completed)

    @property
    def completed_count(self) -> int:
        with self._lock:
            return len(self._completed)

    @property
    def is_complete(self) -> bool:
        return self.completed_count == self.num_chunks

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _write(self) -> None:
        payload = dict(self._header)
        payload["chunks"] = {
            str(cid): {f: getattr(st, f) for f in STAT_FIELDS}
            for cid, st in sorted(self._completed.items())
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
        os.replace(tmp, self.path)
