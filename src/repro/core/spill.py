"""Chunk stores: where output chunks land on the host side.

The paper assembles arriving chunks in (128 GB of) host memory.  When the
output exceeds even the host, chunks must spill to storage — the natural
next rung of the out-of-core ladder.  Two stores share one interface:

``MemoryChunkStore``
    the paper's behaviour: chunks held as CSR matrices in host memory.
``DiskChunkStore``
    each chunk written to a compressed ``.npz`` as it "arrives" and
    re-loaded lazily; peak host memory stays at one chunk.

Both assemble into the full matrix on demand, and both are accepted by
:func:`repro.core.api.run_out_of_core` via the ``chunk_store`` argument.
"""

from __future__ import annotations

import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from ..observability import as_tracer
from ..sparse.formats import CSRMatrix
from ..sparse.io import load_npz, save_npz

__all__ = ["MemoryChunkStore", "DiskChunkStore"]


class MemoryChunkStore:
    """Chunks kept in host memory (the paper's configuration).

    ``tracer`` (:mod:`repro.observability`) records per-chunk ``put`` /
    ``get`` latency spans and samples the bytes held by the store after
    every put — the "chunk-store bytes" gauge of the pipeline trace.
    """

    def __init__(self, *, tracer=None) -> None:
        self._chunks: Dict[Tuple[int, int], CSRMatrix] = {}
        self._shape: Optional[Tuple[int, int]] = None  # (row panels, col panels)
        # the parallel chunk executor streams arrivals from worker threads
        self._lock = threading.Lock()
        self._tracer = as_tracer(tracer)
        self._held_bytes = 0  # maintained incrementally; nbytes() is O(n)

    def put(self, row_panel: int, col_panel: int, chunk: CSRMatrix) -> None:
        with self._tracer.span(f"store_put[{row_panel},{col_panel}]", "store",
                               bytes=chunk.nbytes() if self._tracer.enabled else 0):
            with self._lock:
                prev = self._chunks.get((row_panel, col_panel))
                if prev is not None:
                    self._held_bytes -= prev.nbytes()
                self._chunks[(row_panel, col_panel)] = chunk
                self._held_bytes += chunk.nbytes()
                self._grow_shape(row_panel, col_panel)
        if self._tracer.enabled:
            self._tracer.gauge("chunk_store_bytes", held=self._held_bytes)

    def _grow_shape(self, row_panel: int, col_panel: int) -> None:
        rs = max(row_panel + 1, self._shape[0] if self._shape else 0)
        cs = max(col_panel + 1, self._shape[1] if self._shape else 0)
        self._shape = (rs, cs)

    def get(self, row_panel: int, col_panel: int) -> CSRMatrix:
        with self._tracer.span(f"store_get[{row_panel},{col_panel}]", "store"):
            return self._chunks[(row_panel, col_panel)]

    def __len__(self) -> int:
        return len(self._chunks)

    def keys(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._chunks))

    def grid_shape(self) -> Tuple[int, int]:
        if self._shape is None:
            raise ValueError("store is empty")
        return self._shape

    def assemble(self) -> CSRMatrix:
        """The full output matrix (requires a complete grid)."""
        from .assemble import assemble_chunks

        rows, cols = self.grid_shape()
        missing = [
            (i, j) for i in range(rows) for j in range(cols)
            if (i, j) not in self._chunks
        ]
        if missing:
            raise ValueError(f"incomplete chunk grid; missing {missing[:4]}...")
        return assemble_chunks(
            [[self.get(i, j) for j in range(cols)] for i in range(rows)]
        )

    def nbytes(self) -> int:
        """Host memory held by the stored chunks."""
        return sum(c.nbytes() for c in self._chunks.values())

    def close(self) -> None:  # symmetry with the disk store
        self._chunks.clear()


class DiskChunkStore(MemoryChunkStore):
    """Chunks spilled to per-chunk ``.npz`` files under a directory.

    ``put`` writes and releases the chunk immediately; ``get`` re-loads.
    The directory is created on demand (a temporary one when not given)
    and removed by :meth:`close`.
    """

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 tracer=None) -> None:
        super().__init__(tracer=tracer)
        self._own_dir = directory is None
        self._dir = Path(directory) if directory else Path(tempfile.mkdtemp(prefix="repro-chunks-"))
        self._dir.mkdir(parents=True, exist_ok=True)
        self._paths: Dict[Tuple[int, int], Path] = {}

    def _path(self, row_panel: int, col_panel: int) -> Path:
        return self._dir / f"chunk_{row_panel}_{col_panel}.npz"

    def put(self, row_panel: int, col_panel: int, chunk: CSRMatrix) -> None:
        path = self._path(row_panel, col_panel)
        with self._tracer.span(f"store_put[{row_panel},{col_panel}]", "store",
                               bytes=chunk.nbytes() if self._tracer.enabled else 0):
            save_npz(path, chunk)  # distinct per-chunk file; write needs no lock
            with self._lock:
                self._paths[(row_panel, col_panel)] = path
                self._grow_shape(row_panel, col_panel)
        if self._tracer.enabled:
            self._tracer.gauge("chunk_store_bytes", held=self.nbytes())

    def get(self, row_panel: int, col_panel: int) -> CSRMatrix:
        with self._tracer.span(f"store_get[{row_panel},{col_panel}]", "store"):
            return load_npz(self._paths[(row_panel, col_panel)])

    def __len__(self) -> int:
        return len(self._paths)

    def keys(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._paths))

    def assemble(self) -> CSRMatrix:
        from .assemble import assemble_chunks

        rows, cols = self.grid_shape()
        missing = [
            (i, j) for i in range(rows) for j in range(cols)
            if (i, j) not in self._paths
        ]
        if missing:
            raise ValueError(f"incomplete chunk grid; missing {missing[:4]}...")
        return assemble_chunks(
            [[self.get(i, j) for j in range(cols)] for i in range(rows)]
        )

    def nbytes(self) -> int:
        """Bytes on disk (compressed)."""
        return sum(p.stat().st_size for p in self._paths.values())

    def close(self) -> None:
        for p in self._paths.values():
            p.unlink(missing_ok=True)
        self._paths.clear()
        if self._own_dir:
            try:
                self._dir.rmdir()
            except OSError:
                pass
