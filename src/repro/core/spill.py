"""Chunk stores and the checkpoint run manifest.

The paper assembles arriving chunks in (128 GB of) host memory.  When the
output exceeds even the host, chunks must spill to storage — the natural
next rung of the out-of-core ladder.  Two stores share one interface:

``MemoryChunkStore``
    the paper's behaviour: chunks held as CSR matrices in host memory.
``DiskChunkStore``
    each chunk written to a compressed ``.npz`` as it "arrives" and
    re-loaded lazily; peak host memory stays at one chunk.  A store
    pointed at a directory that already holds chunk files *adopts* them
    — which is how a resumed run finds the chunks a previous (killed)
    run already produced.

Both assemble into the full matrix on demand, and both are accepted by
:func:`repro.core.api.run_out_of_core` via the ``chunk_store`` argument.

:class:`RunManifest` is the checkpoint: a JSON file recording the run's
identity (a fresh run id plus a SHA-256 hash of the operands and the
chunk grid) and, incrementally, the full :class:`~repro.core.chunks.\
ChunkStats` record of every completed chunk.  The executor's sink marks
a chunk done only *after* its store write, so the manifest never points
at data that was not durably written; every rewrite is atomic (temp file
+ ``os.replace``), so a kill mid-write leaves the previous good
manifest.  ``run_out_of_core(..., resume=manifest)`` validates the hash
and recomputes only the chunks the manifest does not record.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import uuid
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..observability import as_tracer
from ..sparse.formats import CSRMatrix
from ..sparse.io import load_npz, save_npz
from .chunks import STAT_FIELDS, ChunkGrid, ChunkStats
from .governor.integrity import ChunkCorruption, crc32_matrix

__all__ = [
    "MemoryChunkStore",
    "DiskChunkStore",
    "SpillableChunkStore",
    "RunManifest",
    "ManifestMismatch",
    "operand_grid_hash",
]

#: archive key carrying a chunk file's CRC32 (structure + values).
#: Stored as an extra, so archives remain readable by plain loaders.
CHUNK_CRC_KEY = "crc32"


class MemoryChunkStore:
    """Chunks kept in host memory (the paper's configuration).

    ``tracer`` (:mod:`repro.observability`) records per-chunk ``put`` /
    ``get`` latency spans and samples the bytes held by the store after
    every put — the "chunk-store bytes" gauge of the pipeline trace.
    """

    def __init__(self, *, tracer=None) -> None:
        self._chunks: Dict[Tuple[int, int], CSRMatrix] = {}
        self._shape: Optional[Tuple[int, int]] = None  # (row panels, col panels)
        # the parallel chunk executor streams arrivals from worker threads
        self._lock = threading.Lock()
        self._tracer = as_tracer(tracer)
        self._held_bytes = 0  # maintained incrementally; nbytes() is O(n)

    def put(self, row_panel: int, col_panel: int, chunk: CSRMatrix) -> None:
        with self._tracer.span(f"store_put[{row_panel},{col_panel}]", "store",
                               bytes=chunk.nbytes() if self._tracer.enabled else 0):
            with self._lock:
                prev = self._chunks.get((row_panel, col_panel))
                if prev is not None:
                    self._held_bytes -= prev.nbytes()
                self._chunks[(row_panel, col_panel)] = chunk
                self._held_bytes += chunk.nbytes()
                self._grow_shape(row_panel, col_panel)
        if self._tracer.enabled:
            self._tracer.gauge("chunk_store_bytes", held=self._held_bytes)

    def _grow_shape(self, row_panel: int, col_panel: int) -> None:
        rs = max(row_panel + 1, self._shape[0] if self._shape else 0)
        cs = max(col_panel + 1, self._shape[1] if self._shape else 0)
        self._shape = (rs, cs)

    def get(self, row_panel: int, col_panel: int) -> CSRMatrix:
        with self._tracer.span(f"store_get[{row_panel},{col_panel}]", "store"):
            return self._chunks[(row_panel, col_panel)]

    def discard(self, row_panel: int, col_panel: int) -> None:
        """Forget one chunk (e.g. one that failed integrity checks on
        resume) so a recompute can overwrite it; no-op when absent."""
        with self._lock:
            prev = self._chunks.pop((row_panel, col_panel), None)
            if prev is not None:
                self._held_bytes -= prev.nbytes()

    @property
    def held_bytes(self) -> int:
        """Host memory currently held by stored chunks (incremental
        counter; what the host-memory governor charges for the store)."""
        return self._held_bytes

    def __len__(self) -> int:
        return len(self._chunks)

    def keys(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._chunks))

    def grid_shape(self) -> Tuple[int, int]:
        if self._shape is None:
            raise ValueError("store is empty")
        return self._shape

    def assemble(self) -> CSRMatrix:
        """The full output matrix (requires a complete grid)."""
        from .assemble import assemble_chunks

        rows, cols = self.grid_shape()
        missing = [
            (i, j) for i in range(rows) for j in range(cols)
            if (i, j) not in self._chunks
        ]
        if missing:
            raise ValueError(f"incomplete chunk grid; missing {missing[:4]}...")
        return assemble_chunks(
            [[self.get(i, j) for j in range(cols)] for i in range(rows)]
        )

    def nbytes(self) -> int:
        """Host memory held by the stored chunks."""
        return sum(c.nbytes() for c in self._chunks.values())

    def close(self) -> None:  # symmetry with the disk store
        self._chunks.clear()


class DiskChunkStore(MemoryChunkStore):
    """Chunks spilled to per-chunk ``.npz`` files under a directory.

    ``put`` writes and releases the chunk immediately; ``get`` re-loads.
    The directory is created on demand (a temporary one when not given)
    and removed by :meth:`close`.

    Chunk files already present in the directory are **adopted** (their
    panel coordinates parsed back from the filenames): a resumed run
    pointed at the previous run's spill directory serves the completed
    chunks from disk and only writes the ones it recomputes.
    """

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 tracer=None) -> None:
        super().__init__(tracer=tracer)
        self._own_dir = directory is None
        self._dir = Path(directory) if directory else Path(tempfile.mkdtemp(prefix="repro-chunks-"))
        self._dir.mkdir(parents=True, exist_ok=True)
        self._paths: Dict[Tuple[int, int], Path] = {}
        for path in sorted(self._dir.glob("chunk_*_*.npz")):
            try:
                rp, cp = map(int, path.stem.split("_")[1:3])
            except ValueError:
                continue  # not one of ours
            self._paths[(rp, cp)] = path
            self._grow_shape(rp, cp)

    @property
    def directory(self) -> Path:
        """The spill directory (recorded in checkpoint manifests)."""
        return self._dir

    def _path(self, row_panel: int, col_panel: int) -> Path:
        return self._dir / f"chunk_{row_panel}_{col_panel}.npz"

    def put(self, row_panel: int, col_panel: int, chunk: CSRMatrix) -> None:
        path = self._path(row_panel, col_panel)
        with self._tracer.span(f"store_put[{row_panel},{col_panel}]", "store",
                               bytes=chunk.nbytes() if self._tracer.enabled else 0):
            # every chunk at rest carries its CRC32, verified on get()
            crc = np.array([crc32_matrix(chunk)], dtype=np.uint32)
            save_npz(path, chunk,  # distinct per-chunk file; write needs no lock
                     extra={CHUNK_CRC_KEY: crc})
            with self._lock:
                self._paths[(row_panel, col_panel)] = path
                self._grow_shape(row_panel, col_panel)
        if self._tracer.enabled:
            self._tracer.gauge("chunk_store_bytes", held=self.nbytes())

    def get(self, row_panel: int, col_panel: int) -> CSRMatrix:
        path = self._paths[(row_panel, col_panel)]
        with self._tracer.span(f"store_get[{row_panel},{col_panel}]", "store"):
            try:
                matrix, extras = load_npz(path, with_extras=True)
            except (ValueError, KeyError, OSError, EOFError,
                    zipfile.BadZipFile) as exc:
                # truncated / unparseable file -> typed corruption with
                # the path and panel coords, never a raw numpy error
                raise ChunkCorruption(
                    f"chunk file unreadable ({type(exc).__name__}: {exc})",
                    path=path, row_panel=row_panel, col_panel=col_panel,
                ) from exc
            stored = extras.get(CHUNK_CRC_KEY)
            if stored is not None:  # legacy adopted files carry no CRC
                expected = int(np.asarray(stored).ravel()[0])
                actual = crc32_matrix(matrix)
                if actual != expected:
                    raise ChunkCorruption(
                        f"chunk checksum mismatch (stored {expected:#010x}, "
                        f"recomputed {actual:#010x})",
                        path=path, row_panel=row_panel, col_panel=col_panel,
                    )
            return matrix

    def discard(self, row_panel: int, col_panel: int) -> None:
        with self._lock:
            path = self._paths.pop((row_panel, col_panel), None)
        if path is not None:
            Path(path).unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._paths)

    def keys(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._paths))

    def assemble(self) -> CSRMatrix:
        from .assemble import assemble_chunks

        rows, cols = self.grid_shape()
        missing = [
            (i, j) for i in range(rows) for j in range(cols)
            if (i, j) not in self._paths
        ]
        if missing:
            raise ValueError(f"incomplete chunk grid; missing {missing[:4]}...")
        return assemble_chunks(
            [[self.get(i, j) for j in range(cols)] for i in range(rows)]
        )

    def nbytes(self) -> int:
        """Bytes on disk (compressed)."""
        return sum(p.stat().st_size for p in self._paths.values())

    def close(self) -> None:
        for p in self._paths.values():
            p.unlink(missing_ok=True)
        self._paths.clear()
        if self._own_dir:
            try:
                self._dir.rmdir()
            except OSError:
                pass


class SpillableChunkStore(MemoryChunkStore):
    """A memory store that migrates chunks to disk under pressure.

    Behaves exactly like :class:`MemoryChunkStore` until someone calls
    :meth:`spill` — typically the host-memory governor, when admission
    would exceed the budget.  Spilling moves the largest in-memory
    chunks into a lazily created :class:`DiskChunkStore` (CRC-stamped
    like any disk chunk); ``get`` serves from memory first and falls
    back to disk transparently, so assembly and resume never notice
    where a chunk physically lives.
    """

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 tracer=None) -> None:
        super().__init__(tracer=tracer)
        self._spill_directory = directory
        self._disk: Optional[DiskChunkStore] = None
        self.spilled_bytes_total = 0  # cumulative bytes migrated to disk
        if directory is not None and Path(directory).exists():
            # adopt chunks a previous (killed) run already spilled here
            disk = DiskChunkStore(directory, tracer=tracer)
            if len(disk):
                self._disk = disk
                for rp, cp in disk.keys():
                    self._grow_shape(rp, cp)

    def _disk_store(self) -> DiskChunkStore:
        if self._disk is None:
            self._disk = DiskChunkStore(self._spill_directory,
                                        tracer=self._tracer)
        return self._disk

    @property
    def spill_directory(self) -> Optional[Path]:
        """Where spilled chunks land (``None`` until the first spill
        when no directory was configured)."""
        if self._disk is not None:
            return self._disk.directory
        return Path(self._spill_directory) if self._spill_directory else None

    def put(self, row_panel: int, col_panel: int, chunk: CSRMatrix) -> None:
        super().put(row_panel, col_panel, chunk)
        if self._disk is not None:
            # a recompute supersedes any spilled copy of the same chunk
            self._disk.discard(row_panel, col_panel)

    def spill(self, min_bytes: int) -> int:
        """Migrate in-memory chunks to disk until ``min_bytes`` of host
        memory are freed (largest first — fewest files for the most
        relief); returns the bytes actually freed."""
        freed = 0
        while freed < min_bytes:
            with self._lock:
                if not self._chunks:
                    break
                key = max(self._chunks, key=lambda k: self._chunks[k].nbytes())
                chunk = self._chunks.pop(key)
                self._held_bytes -= chunk.nbytes()
            self._disk_store().put(key[0], key[1], chunk)
            freed += chunk.nbytes()
            self.spilled_bytes_total += chunk.nbytes()
        if freed and self._tracer.enabled:
            self._tracer.gauge("chunk_store_bytes", held=self._held_bytes,
                               spilled=self.spilled_bytes_total)
            self._tracer.bump("governor", spills=1)
        return freed

    def get(self, row_panel: int, col_panel: int) -> CSRMatrix:
        with self._lock:
            chunk = self._chunks.get((row_panel, col_panel))
        if chunk is not None:
            return chunk
        if self._disk is not None:
            return self._disk.get(row_panel, col_panel)
        raise KeyError((row_panel, col_panel))

    def discard(self, row_panel: int, col_panel: int) -> None:
        super().discard(row_panel, col_panel)
        if self._disk is not None:
            self._disk.discard(row_panel, col_panel)

    def _keys(self):
        keys = set(self._chunks)
        if self._disk is not None:
            keys |= set(self._disk.keys())
        return keys

    def keys(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._keys()))

    def __len__(self) -> int:
        return len(self._keys())

    def assemble(self) -> CSRMatrix:
        from .assemble import assemble_chunks

        rows, cols = self.grid_shape()
        have = self._keys()
        missing = [
            (i, j) for i in range(rows) for j in range(cols)
            if (i, j) not in have
        ]
        if missing:
            raise ValueError(f"incomplete chunk grid; missing {missing[:4]}...")
        return assemble_chunks(
            [[self.get(i, j) for j in range(cols)] for i in range(rows)]
        )

    def nbytes(self) -> int:
        """Total stored bytes: host memory plus (compressed) disk."""
        disk = self._disk.nbytes() if self._disk is not None else 0
        return super().nbytes() + disk

    def close(self) -> None:
        super().close()
        if self._disk is not None:
            self._disk.close()
            self._disk = None


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
class ManifestMismatch(ValueError):
    """A manifest does not belong to the (operands, grid) being resumed."""


def operand_grid_hash(a: CSRMatrix, b: CSRMatrix, grid: ChunkGrid) -> str:
    """SHA-256 fingerprint binding a manifest to its exact computation.

    Hashes the full CSR content of both operands plus the grid bounds —
    a resumed run with different inputs (or a different partitioning)
    must be rejected, not silently mixed with stale chunks.
    """
    h = hashlib.sha256()
    for mat in (a, b):
        h.update(repr(mat.shape).encode())
        for arr in (mat.row_offsets, mat.col_ids, mat.data):
            h.update(arr.tobytes())
    h.update(grid.row_bounds.tobytes())
    h.update(grid.col_bounds.tobytes())
    return h.hexdigest()


class RunManifest:
    """Incremental JSON checkpoint of one chunk-grid execution.

    Created by :meth:`create` at run start and handed to the executor,
    which calls :meth:`mark_done` *after* each chunk's durable sink
    write.  Every update rewrites the file atomically, so the manifest on
    disk is always a consistent prefix of the run.  :meth:`load` +
    :meth:`validate` + :meth:`completed_stats` drive the resume path.

    Thread-safe: lane threads complete chunks concurrently (the executor
    additionally serializes sink writes, but the manifest does not rely
    on that).
    """

    VERSION = 1

    def __init__(self, path: os.PathLike, header: dict,
                 completed: Optional[Dict[int, ChunkStats]] = None,
                 chunk_crcs: Optional[Dict[int, int]] = None) -> None:
        self.path = Path(path)
        self._header = header
        self._completed: Dict[int, ChunkStats] = dict(completed or {})
        #: chunk id -> CRC32 of the chunk matrix recorded at sink time;
        #: resume verifies stored chunks against these before trusting them
        self._chunk_crcs: Dict[int, int] = dict(chunk_crcs or {})
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: os.PathLike, a: CSRMatrix, b: CSRMatrix,
               grid: ChunkGrid, *,
               store_dir: Optional[os.PathLike] = None) -> "RunManifest":
        """Start a fresh manifest for ``C = A x B`` over ``grid`` and
        write it (with zero completed chunks) immediately."""
        header = {
            "version": cls.VERSION,
            "run_id": uuid.uuid4().hex,
            "grid_hash": operand_grid_hash(a, b, grid),
            "num_chunks": grid.num_chunks,
            "row_bounds": grid.row_bounds.tolist(),
            "col_bounds": grid.col_bounds.tolist(),
            "store_dir": str(store_dir) if store_dir is not None else None,
        }
        manifest = cls(path, header)
        manifest._write()
        return manifest

    @classmethod
    def load(cls, path: os.PathLike) -> "RunManifest":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ManifestMismatch(
                f"manifest {path} is not valid JSON (truncated or "
                f"corrupted): {exc}"
            ) from exc
        # integrity: the manifest carries a CRC32 over its own canonical
        # serialization; a bit-flip in stats or header must not be
        # silently resumed against.  Manifests written before the field
        # existed load without the check.
        recorded_crc = payload.pop("manifest_crc32", None)
        if recorded_crc is not None:
            actual = cls._payload_crc(payload)
            if actual != int(recorded_crc):
                raise ManifestMismatch(
                    f"manifest {path} failed its integrity check "
                    f"(stored {int(recorded_crc):#010x}, recomputed "
                    f"{actual:#010x}) — refusing to resume from it"
                )
        version = payload.get("version")
        if version != cls.VERSION:
            raise ManifestMismatch(
                f"unsupported manifest version {version!r} in {path}"
            )
        header = {k: payload[k] for k in (
            "version", "run_id", "grid_hash", "num_chunks",
            "row_bounds", "col_bounds", "store_dir",
        )}
        completed = {}
        chunk_crcs = {}
        for cid, record in payload.get("chunks", {}).items():
            record = dict(record)
            crc = record.pop("crc32", None)
            if crc is not None:
                chunk_crcs[int(cid)] = int(crc)
            completed[int(cid)] = ChunkStats(**record)
        return cls(path, header, completed, chunk_crcs)

    @staticmethod
    def _payload_crc(payload: dict) -> int:
        """CRC32 over the canonical (sorted, compact) JSON serialization
        of the manifest payload, excluding the CRC field itself."""
        body = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return zlib.crc32(body) & 0xFFFFFFFF

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def run_id(self) -> str:
        return self._header["run_id"]

    @property
    def num_chunks(self) -> int:
        return int(self._header["num_chunks"])

    @property
    def store_dir(self) -> Optional[str]:
        return self._header["store_dir"]

    @property
    def grid(self) -> ChunkGrid:
        return ChunkGrid(
            row_bounds=np.asarray(self._header["row_bounds"], dtype=np.int64),
            col_bounds=np.asarray(self._header["col_bounds"], dtype=np.int64),
        )

    def validate(self, a: CSRMatrix, b: CSRMatrix, grid: ChunkGrid) -> None:
        """Reject a manifest recorded for different operands or grid."""
        actual = operand_grid_hash(a, b, grid)
        if actual != self._header["grid_hash"]:
            raise ManifestMismatch(
                f"manifest {self.path} (run {self.run_id}) was recorded "
                "for different operands or a different chunk grid — "
                "refusing to resume against it"
            )

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    def mark_done(self, stats: ChunkStats,
                  crc32: Optional[int] = None) -> None:
        """Record one completed chunk and persist the manifest atomically.

        The executor calls this after the chunk's sink write, under the
        sink lock — completion on disk implies the data is on disk.
        ``crc32`` (the chunk matrix's integrity checksum) lets a resume
        verify the stored chunk before trusting it."""
        with self._lock:
            self._completed[stats.chunk_id] = stats
            if crc32 is not None:
                self._chunk_crcs[stats.chunk_id] = int(crc32)
            self._write()

    def completed_stats(self) -> Dict[int, ChunkStats]:
        """``{chunk_id: ChunkStats}`` of every recorded chunk."""
        with self._lock:
            return dict(self._completed)

    def chunk_crc(self, chunk_id: int) -> Optional[int]:
        """The CRC32 recorded for a completed chunk (``None`` when the
        manifest predates integrity stamping)."""
        with self._lock:
            return self._chunk_crcs.get(chunk_id)

    @property
    def completed_count(self) -> int:
        with self._lock:
            return len(self._completed)

    @property
    def is_complete(self) -> bool:
        return self.completed_count == self.num_chunks

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _write(self) -> None:
        payload = dict(self._header)
        chunks = {}
        for cid, st in sorted(self._completed.items()):
            record = {f: getattr(st, f) for f in STAT_FIELDS}
            if cid in self._chunk_crcs:
                record["crc32"] = self._chunk_crcs[cid]
            chunks[str(cid)] = record
        payload["chunks"] = chunks
        payload["manifest_crc32"] = self._payload_crc(payload)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
        os.replace(tmp, self.path)
