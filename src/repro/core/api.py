"""Public entry points of the out-of-core SpGEMM framework.

Typical use::

    from repro.core import run_out_of_core
    from repro.device import v100_node

    node = v100_node(device_memory_bytes=1 << 28)   # scaled device
    result = run_out_of_core(a, a, node)            # C = A @ A, async GPU
    c = result.matrix
    print(result.gflops, result.transfer_fraction)

The ``run_*`` functions execute the real kernels (so ``result.matrix`` is
the exact product) *and* simulate the device timeline; the ``simulate_*``
functions re-schedule an existing :class:`ChunkProfile` without
recomputing — that is how the benchmark harness sweeps schedules cheaply.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..device.kernels import CostModel, default_cost_model
from ..device.specs import NodeSpec, v100_node
from ..sparse.formats import CSRMatrix
from ..spgemm.twophase import spgemm_twophase
from .assemble import assemble_chunks
from .chunks import ChunkGrid, ChunkProfile, profile_chunks
from .hybrid import DEFAULT_RATIO, assign_chunks, build_hybrid_engine
from .planner import plan_grid
from .results import RunResult
from .schedule import CPU, build_async_schedule, build_sync_schedule, new_engine

__all__ = [
    "spgemm",
    "make_profile",
    "simulate_out_of_core",
    "simulate_hybrid",
    "simulate_cpu_baseline",
    "run_out_of_core",
    "run_hybrid",
]


def _resolve_node(node: Optional[NodeSpec]) -> NodeSpec:
    return node if node is not None else v100_node()

def _resolve_cost(node: NodeSpec, cost: Optional[CostModel]) -> CostModel:
    return cost if cost is not None else default_cost_model(node)


def spgemm(a: CSRMatrix, b: CSRMatrix, *, kernel=None) -> CSRMatrix:
    """In-core SpGEMM via the full two-phase kernel (no device simulation).

    ``kernel`` picks the accumulator family (``None`` = auto; see
    :mod:`repro.spgemm.kernels`) — the product is the same either way.
    """
    return spgemm_twophase(a, b, kernel=kernel).matrix


def make_profile(
    a: CSRMatrix,
    b: CSRMatrix,
    node: Optional[NodeSpec] = None,
    *,
    grid: Optional[ChunkGrid] = None,
    keep_outputs: bool = False,
    chunk_store=None,
    name: str = "",
    workers: int = 1,
    window: Optional[int] = None,
    tracer=None,
    backend: Optional[str] = None,
    retry=None,
    crash_budget: int = 0,
    faults=None,
    manifest=None,
    resume_stats=None,
    governor=None,
    kernel=None,
):
    """Plan the chunk grid (unless given) and execute/profile every chunk.

    Returns ``(profile, outputs_or_None)``.  ``chunk_store`` streams the
    chunks into a :mod:`repro.core.spill` store as they are produced.

    ``workers`` > 1 executes the chunks concurrently through the chunk
    execution engine (:mod:`repro.core.executor`) with a bounded
    in-flight ``window``; results are bit-identical to serial execution
    and the profile carries measured per-chunk and end-to-end wall times.
    ``backend`` selects where the chunk kernels run: ``"serial"``,
    ``"thread"``, or ``"process"`` (worker processes with shared-memory
    operand transport — escapes the GIL); ``None`` keeps the legacy
    resolution (serial when ``workers == 1``, else threads).

    ``tracer`` (:mod:`repro.observability`) records every chunk's
    lifecycle as spans; the default null tracer records nothing and adds
    no overhead.

    ``retry`` / ``crash_budget`` / ``faults`` configure fault tolerance,
    ``manifest`` / ``resume_stats`` checkpoint/resume, ``governor`` the
    runtime deadline / memory-pressure / integrity limits, ``kernel`` the
    accumulator family every chunk runs with — see
    :func:`repro.core.executor.execute_chunk_grid`.
    """
    from .governor import as_governor

    node = _resolve_node(node)
    if grid is None:
        grid = plan_grid(a, b, node).grid
    sink = chunk_store.put if chunk_store is not None else None
    governor = as_governor(governor)
    if governor is not None and chunk_store is not None:
        # the store's held bytes join the host-memory ledger, and the
        # governor may squeeze it (spill-under-pressure) when it can
        governor.attach_store(chunk_store)
    return profile_chunks(
        a, b, grid, keep_outputs=keep_outputs, chunk_sink=sink, name=name,
        workers=workers, window=window, tracer=tracer, backend=backend,
        retry=retry, crash_budget=crash_budget, faults=faults,
        manifest=manifest, resume_stats=resume_stats, governor=governor,
        kernel=kernel,
    )


# ----------------------------------------------------------------------
# simulation-only paths (re-schedule an existing profile)
# ----------------------------------------------------------------------
def simulate_out_of_core(
    profile: ChunkProfile,
    node: Optional[NodeSpec] = None,
    *,
    mode: str = "async",
    order: Union[str, Sequence[int]] = "flops_desc",
    divided_transfers: bool = True,
    allocator: str = "pool",
    input_mode: str = "prestaged",
    cost: Optional[CostModel] = None,
) -> RunResult:
    """Simulate the out-of-core GPU execution of a profiled workload.

    ``mode`` is ``"async"`` (the paper's pipeline) or ``"sync"`` (the
    partitioned-spECK baseline).  ``order`` is ``"flops_desc"``,
    ``"natural"``, or an explicit chunk-id sequence.  ``input_mode`` is
    ``"prestaged"`` (paper measurement), ``"resident"`` (panel loads on
    the timeline, once each) or ``"streamed"`` (panels re-loaded per
    chunk — the arbitrarily-large-inputs extension).
    """
    node = _resolve_node(node)
    cm = _resolve_cost(node, cost)
    if isinstance(order, str):
        if order == "flops_desc":
            order_ids = profile.order_by_flops_desc()
        elif order == "natural":
            order_ids = profile.natural_order()
        else:
            raise ValueError(f"unknown order {order!r}")
    else:
        order_ids = list(order)

    if mode == "sync":
        eng = build_sync_schedule(
            profile, cm, order=order_ids, input_mode=input_mode
        )
    elif mode == "async":
        eng = build_async_schedule(
            profile, cm, order=order_ids,
            divided_transfers=divided_transfers, allocator=allocator,
            input_mode=input_mode,
        )
    else:
        raise ValueError(f"unknown mode {mode!r}")
    timeline = eng.run()
    return RunResult(
        name=profile.name, mode=mode, timeline=timeline, profile=profile,
        meta={"order": order if isinstance(order, str) else "explicit",
              "divided_transfers": divided_transfers, "allocator": allocator,
              "input_mode": input_mode},
    )


def simulate_hybrid(
    profile: ChunkProfile,
    node: Optional[NodeSpec] = None,
    *,
    ratio: float = DEFAULT_RATIO,
    reorder: bool = True,
    cost: Optional[CostModel] = None,
) -> RunResult:
    """Simulate the hybrid CPU+GPU execution (Algorithm 4)."""
    node = _resolve_node(node)
    cm = _resolve_cost(node, cost)
    assignment = assign_chunks(profile, ratio, reorder=reorder)
    eng = build_hybrid_engine(profile, cm, assignment)
    timeline = eng.run()
    return RunResult(
        name=profile.name, mode="hybrid", timeline=timeline, profile=profile,
        meta={"ratio": ratio, "reorder": reorder,
              "num_gpu_chunks": assignment.num_gpu,
              "gpu_flop_share": assignment.gpu_flop_share},
    )


def simulate_cpu_baseline(
    profile: ChunkProfile,
    node: Optional[NodeSpec] = None,
    *,
    cost: Optional[CostModel] = None,
) -> RunResult:
    """Simulate the multicore CPU baseline: the whole (unpartitioned)
    product on the host — no chunking, no PCIe traffic."""
    node = _resolve_node(node)
    cm = _resolve_cost(node, cost)
    eng = new_engine()
    eng.submit(
        "cpu_full", CPU,
        cm.t_cpu_chunk(profile.total_flops, profile.total_nnz_out),
        stream="cpu", kind="cpu",
    )
    return RunResult(
        name=profile.name, mode="cpu", timeline=eng.run(), profile=profile,
    )


def _verify_resumed_chunks(manifest, store, resume_stats):
    """The ``--resume`` integrity gate: re-read each checkpointed chunk
    from the store and verify it against the manifest's CRC.  Returns
    ``(verified_stats, dropped)`` — dropped chunks (corrupt, mismatched,
    or missing) are evicted from the store so the executor recomputes
    them; the recompute re-checkpoints with a fresh CRC."""
    from .governor.integrity import ChunkCorruption, crc32_matrix

    verified = {}
    dropped = 0
    for cid, stats in resume_stats.items():
        rp, cp = stats.row_panel, stats.col_panel
        try:
            matrix = store.get(rp, cp)
        except KeyError:
            dropped += 1  # vanished from the store: recompute
            continue
        except ChunkCorruption:
            store.discard(rp, cp)
            dropped += 1
            continue
        expected = manifest.chunk_crc(cid)
        if expected is not None and crc32_matrix(matrix) != expected:
            # the store's copy parses but is not the chunk the manifest
            # checkpointed (e.g. silently overwritten) — recompute
            store.discard(rp, cp)
            dropped += 1
            continue
        verified[cid] = stats
    return verified, dropped


# ----------------------------------------------------------------------
# full runs: real kernels + simulation
# ----------------------------------------------------------------------
def run_out_of_core(
    a: CSRMatrix,
    b: CSRMatrix,
    node: Optional[NodeSpec] = None,
    *,
    mode: str = "async",
    order: Union[str, Sequence[int]] = "flops_desc",
    divided_transfers: bool = True,
    allocator: str = "pool",
    grid: Optional[ChunkGrid] = None,
    keep_output: bool = True,
    chunk_store=None,
    name: str = "",
    cost: Optional[CostModel] = None,
    workers: int = 1,
    window: Optional[int] = None,
    tracer=None,
    backend: Optional[str] = None,
    retry=None,
    crash_budget: int = 0,
    faults=None,
    checkpoint=None,
    resume=None,
    governor=None,
    kernel=None,
) -> RunResult:
    """Out-of-core GPU SpGEMM: compute ``A x B`` chunk by chunk for real,
    and simulate the device timeline of the chosen schedule.

    ``chunk_store`` (see :mod:`repro.core.spill`) receives each chunk as
    it is produced — pass a :class:`~repro.core.spill.DiskChunkStore` when
    even host memory cannot hold the output; combine with
    ``keep_output=False`` and assemble from the store afterwards.

    ``workers`` parallelizes the real chunk kernels on the host (the
    simulated timeline is unaffected); the product is bit-identical for
    any worker count and measured wall times land in ``result.profile``.
    ``backend`` selects the executor (``serial`` / ``thread`` /
    ``process``); see :func:`make_profile`.

    ``tracer`` (:mod:`repro.observability`) records the real execution's
    spans — queue wait, kernel phases, sink writes — for Chrome-trace
    export; results are unaffected.

    Fault tolerance and checkpoint/resume:

    ``retry`` (a :class:`~repro.core.executor.RetryPolicy`) re-runs
    failed chunk attempts with backoff; ``crash_budget`` lets the
    process backend absorb hard worker deaths by respawning; ``faults``
    injects chaos-testing failures (see :mod:`repro.core.executor.\
    faults`).  ``checkpoint=PATH`` writes a :class:`~repro.core.spill.\
    RunManifest` recording every completed chunk as the run progresses.
    ``resume=PATH_OR_MANIFEST`` loads such a manifest, validates it
    against the operands/grid, recomputes **only** the unfinished
    chunks, and keeps extending the same manifest — the result is
    bit-identical to an uninterrupted run.  Resuming with
    ``keep_output=True`` requires ``chunk_store`` to hold the previous
    run's chunks (e.g. a :class:`~repro.core.spill.DiskChunkStore` over
    the original spill directory).  Resumed chunks are re-read and
    CRC-verified against the manifest; corrupt or missing ones are
    evicted and recomputed (``meta["corrupt_recomputed"]`` counts them).

    ``governor`` (a :class:`~repro.core.governor.Governor` /
    :class:`~repro.core.governor.GovernorConfig`) adds runtime limits:
    per-chunk deadlines + hung-worker watchdog, a host-memory budget
    with spill-under-pressure, and device-OOM re-splitting — see
    :mod:`repro.core.governor`.
    """
    from .spill import RunManifest

    node = _resolve_node(node)
    manifest = None
    resume_stats = None
    corrupt_recomputed = 0
    if resume is not None:
        manifest = (resume if isinstance(resume, RunManifest)
                    else RunManifest.load(resume))
        if grid is None:
            grid = manifest.grid
        manifest.validate(a, b, grid)
        resume_stats = manifest.completed_stats()
        if resume_stats and keep_output and chunk_store is None:
            raise ValueError(
                "resuming with keep_output=True requires the chunk_store "
                "holding the previous run's chunks (e.g. a DiskChunkStore "
                "over the original spill directory)"
            )
        if resume_stats and chunk_store is not None:
            # integrity gate: re-read every checkpointed chunk, verify
            # its CRC against the manifest, and evict anything corrupt
            # or missing so it recomputes instead of poisoning the result
            resume_stats, corrupt_recomputed = _verify_resumed_chunks(
                manifest, chunk_store, resume_stats
            )
    elif checkpoint is not None:
        if grid is None:
            grid = plan_grid(a, b, node).grid
        store_dir = getattr(chunk_store, "directory", None)
        manifest = RunManifest.create(checkpoint, a, b, grid,
                                      store_dir=store_dir)
    profile, outputs = make_profile(
        a, b, node, grid=grid, keep_outputs=keep_output,
        chunk_store=chunk_store, name=name, workers=workers, window=window,
        tracer=tracer, backend=backend,
        retry=retry, crash_budget=crash_budget, faults=faults,
        manifest=manifest, resume_stats=resume_stats, governor=governor,
        kernel=kernel,
    )
    if keep_output and resume_stats:
        # the executor skipped these chunks; serve them from the store
        for cid in resume_stats:
            rp, cp = profile.grid.panel_of(cid)
            if outputs[rp][cp] is None:
                outputs[rp][cp] = chunk_store.get(rp, cp)
    result = simulate_out_of_core(
        profile, node, mode=mode, order=order,
        divided_transfers=divided_transfers, allocator=allocator, cost=cost,
    )
    matrix = assemble_chunks(outputs) if keep_output else None
    meta = dict(result.meta)
    meta["workers"] = workers
    if resume_stats is not None:
        meta["resumed_chunks"] = len(resume_stats)
    if corrupt_recomputed:
        meta["corrupt_recomputed"] = corrupt_recomputed
    if manifest is not None:
        meta["manifest"] = str(manifest.path)
        meta["run_id"] = manifest.run_id
    return RunResult(
        name=result.name, mode=result.mode, timeline=result.timeline,
        profile=profile, matrix=matrix, meta=meta,
    )


def run_hybrid(
    a: CSRMatrix,
    b: CSRMatrix,
    node: Optional[NodeSpec] = None,
    *,
    ratio: float = DEFAULT_RATIO,
    reorder: bool = True,
    grid: Optional[ChunkGrid] = None,
    keep_output: bool = True,
    name: str = "",
    cost: Optional[CostModel] = None,
    workers: int = 1,
    window: Optional[int] = None,
    tracer=None,
    backend: Optional[str] = None,
    retry=None,
    crash_budget: int = 0,
    faults=None,
    governor=None,
    kernel=None,
) -> RunResult:
    """Hybrid CPU+GPU SpGEMM (Algorithm 4), real compute + simulation.

    With ``workers`` > 1 the worker pool is split between the two chunk
    sets of Algorithm 4: the flop-densest prefix holding ``ratio`` of the
    flops (the "GPU" lane) and the remainder (the "CPU" lane) drain
    concurrently, each behind its own bounded window — the host analog of
    the two devices working simultaneously.  ``backend`` selects the
    executor the lanes run on (``thread`` pool or ``process`` workers).
    ``tracer`` records both lanes' spans under their lane names
    ("gpu" / "cpu")."""
    node = _resolve_node(node)
    if workers > 1:
        from ..core.chunks import chunk_flops
        from ..spgemm.kernels import resolve_kernel
        from .executor import execute_chunk_grid, plan_hybrid_lanes
        from .executor.plan import ChunkPlan

        if grid is None:
            grid = plan_grid(a, b, node).grid
        hybrid = plan_hybrid_lanes(chunk_flops(a, b, grid), workers, ratio)
        plan = ChunkPlan.from_hybrid(hybrid, kernel=resolve_kernel(kernel))
        profile, outputs = execute_chunk_grid(
            a, b, grid, keep_outputs=keep_output, name=name,
            window=window, plan=plan, tracer=tracer,
            backend=backend,
            retry=retry, crash_budget=crash_budget, faults=faults,
            governor=governor,
        )
    else:
        profile, outputs = make_profile(
            a, b, node, grid=grid, keep_outputs=keep_output, name=name,
            tracer=tracer, backend=backend,
            retry=retry, crash_budget=crash_budget, faults=faults,
            governor=governor, kernel=kernel,
        )
    result = simulate_hybrid(profile, node, ratio=ratio, reorder=reorder, cost=cost)
    matrix = assemble_chunks(outputs) if keep_output else None
    meta = dict(result.meta)
    meta["workers"] = workers
    return RunResult(
        name=result.name, mode=result.mode, timeline=result.timeline,
        profile=profile, matrix=matrix, meta=meta,
    )
