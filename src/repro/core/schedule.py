"""Schedule builders: synchronous, asynchronous (Fig. 6), and hybrid.

Each builder turns a :class:`~repro.core.chunks.ChunkProfile` into a DAG of
simulated commands on the node's four engines — ``gpu`` (compute), ``h2d``
and ``d2h`` (one DMA engine per PCIe direction, the constraint driving
Section IV), and ``cpu`` (the aggregate multicore).

**Synchronous** (modified spECK, Algorithm 3): one stream, every command
waits for the previous one, dynamic device allocations between phases.
This is the baseline of Fig. 4 and Fig. 8.

**Asynchronous** (Section IV): two streams with two pre-allocated buffer
sets; per chunk the commands are

    h2d(panels) -> analysis -> d2h(info1) -> symbolic -> d2h(info2) -> numeric

and the *result* transfer of the previous chunk is divided into two
portions interleaved between the info transfers of the current chunk
(Fig. 6): portion 1 (33 % of the rows) rides the D2H engine during the
current chunk's symbolic phase, portion 2 during its numeric phase.
Stream reuse every other chunk is exactly the double-buffering constraint.

With ``allocator="dynamic"`` the async builder inserts the malloc barrier
ops that CUDA's dynamic allocation implies ("two commands from different
streams cannot run concurrently if the host issues any device memory
allocation") — the ablation showing why pre-allocation matters.

**Hybrid** (Algorithm 4): the chosen GPU chunks run through the async
pipeline while the CPU chunks run back-to-back on the ``cpu`` resource.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..device.engine import SimEngine, SimOp
from ..device.kernels import CostModel
from .chunks import ChunkProfile, ChunkStats

__all__ = [
    "GPU",
    "H2D",
    "D2H",
    "CPU",
    "new_engine",
    "build_sync_schedule",
    "build_async_schedule",
    "add_cpu_chunks",
    "export_chrome_events",
]

GPU = "gpu"
H2D = "h2d"
D2H = "d2h"
CPU = "cpu"

#: fraction of result rows in the first transfer portion (Section IV.B:
#: "the first portion contains 33% of the total number of rows")
FIRST_PORTION = 0.33


def new_engine() -> SimEngine:
    """An engine with the node's four resources."""
    eng = SimEngine()
    eng.add_resource(GPU)
    eng.add_resource(H2D)
    eng.add_resource(D2H)
    eng.add_resource(CPU)
    return eng


def _require_executed(profile: ChunkProfile) -> None:
    if not all(c.executed for c in profile.chunks):
        raise ValueError("profile must be fully executed before scheduling")


#: input-load policies (see build_* docstrings)
INPUT_MODES = ("prestaged", "resident", "streamed")


class _PanelLoader:
    """Issues H2D panel loads according to the input policy.

    ``prestaged``
        inputs are on the device before timing starts (the paper's
        measurement: inputs are a few percent of the traffic) — no ops.
    ``resident``
        the paper's Algorithm 3 behaviour made explicit: every panel is
        transferred on first use and stays resident (inputs fit).
    ``streamed``
        the "arbitrarily large matrices" extension (Section III.A's stated
        goal): only one panel of each kind fits, so a panel is re-loaded
        whenever the previous chunk used a different one.
    """

    def __init__(self, eng: SimEngine, cm: CostModel, mode: str, h2d: str = H2D) -> None:
        if mode not in INPUT_MODES:
            raise ValueError(f"unknown input mode {mode!r}; use one of {INPUT_MODES}")
        self.eng = eng
        self.cm = cm
        self.mode = mode
        self.h2d = h2d
        self.loaded_rows: set = set()
        self.loaded_cols: set = set()
        self.current_row: Optional[int] = None
        self.current_col: Optional[int] = None
        self.h2d_bytes = 0

    def _load(self, label: str, nbytes: int, stream: str, chunk_id: int, kind: str) -> None:
        self.h2d_bytes += nbytes
        self.eng.submit(
            label, self.h2d, self.cm.t_h2d(nbytes),
            stream=stream, chunk=chunk_id, kind=kind, bytes=nbytes,
        )

    def require(self, chunk: ChunkStats, stream: str) -> None:
        if self.mode == "prestaged":
            return
        if self.mode == "resident":
            if chunk.row_panel not in self.loaded_rows:
                self.loaded_rows.add(chunk.row_panel)
                self._load(f"h2d_a[{chunk.row_panel}]", chunk.a_panel_bytes,
                           stream, chunk.chunk_id, "h2d_a")
            if chunk.col_panel not in self.loaded_cols:
                self.loaded_cols.add(chunk.col_panel)
                self._load(f"h2d_b[{chunk.col_panel}]", chunk.b_panel_bytes,
                           stream, chunk.chunk_id, "h2d_b")
            return
        # streamed: single-panel cache per kind
        if chunk.row_panel != self.current_row:
            self.current_row = chunk.row_panel
            self._load(f"h2d_a[{chunk.chunk_id}]", chunk.a_panel_bytes,
                       stream, chunk.chunk_id, "h2d_a")
        if chunk.col_panel != self.current_col:
            self.current_col = chunk.col_panel
            self._load(f"h2d_b[{chunk.chunk_id}]", chunk.b_panel_bytes,
                       stream, chunk.chunk_id, "h2d_b")


def _split_output(chunk: ChunkStats, split: float) -> tuple:
    part1 = int(chunk.output_bytes * split)
    return part1, chunk.output_bytes - part1


# ----------------------------------------------------------------------
# synchronous baseline
# ----------------------------------------------------------------------
def build_sync_schedule(
    profile: ChunkProfile,
    cm: CostModel,
    *,
    order: Optional[Sequence[int]] = None,
    input_mode: str = "prestaged",
) -> SimEngine:
    """Synchronous partitioned spECK (Algorithm 3 with blocking copies).

    Single stream: kernels, dynamic mallocs, and transfers all serialize.
    ``input_mode`` selects the panel-load policy (see :class:`_PanelLoader`);
    the default pre-stages inputs, matching the paper's measurement where
    resident inputs are a few percent of the traffic (Section V.B).
    """
    _require_executed(profile)
    eng = new_engine()
    stream = "sync"
    ids = list(order) if order is not None else profile.natural_order()
    loader = _PanelLoader(eng, cm, input_mode)
    for cid in ids:
        ch = profile.chunks[cid]
        loader.require(ch, stream)
        eng.submit(f"analysis[{cid}]", GPU, cm.t_analysis(ch.input_nnz),
                   stream=stream, chunk=cid, kind="analysis")
        eng.submit(f"d2h_info1[{cid}]", D2H, cm.t_d2h(ch.analysis_bytes),
                   stream=stream, chunk=cid, kind="info", bytes=ch.analysis_bytes)
        # dynamic allocation of group info + symbolic structures
        eng.submit(f"malloc_sym[{cid}]", GPU, cm.t_malloc(), stream=stream,
                   chunk=cid, kind="malloc")
        eng.submit(f"symbolic[{cid}]", GPU,
                   cm.t_symbolic(ch.flops, ch.nnz_out, ch.symbolic_kernels),
                   stream=stream, chunk=cid, kind="symbolic")
        eng.submit(f"d2h_info2[{cid}]", D2H, cm.t_d2h(ch.symbolic_bytes),
                   stream=stream, chunk=cid, kind="info", bytes=ch.symbolic_bytes)
        # dynamic allocation of the exactly-sized output
        eng.submit(f"malloc_out[{cid}]", GPU, cm.t_malloc(), stream=stream,
                   chunk=cid, kind="malloc")
        eng.submit(f"numeric[{cid}]", GPU,
                   cm.t_numeric(ch.flops, ch.nnz_out, ch.numeric_kernels),
                   stream=stream, chunk=cid, kind="numeric")
        eng.submit(f"d2h_out[{cid}]", D2H, cm.t_d2h(ch.output_bytes),
                   stream=stream, chunk=cid, kind="output", bytes=ch.output_bytes)
        eng.submit(f"free[{cid}]", GPU, cm.t_malloc(), stream=stream,
                   chunk=cid, kind="malloc")
    return eng


# ----------------------------------------------------------------------
# asynchronous pipeline (Section IV)
# ----------------------------------------------------------------------
def build_async_schedule(
    profile: ChunkProfile,
    cm: CostModel,
    *,
    order: Optional[Sequence[int]] = None,
    num_streams: int = 2,
    divided_transfers: bool = True,
    split: float = FIRST_PORTION,
    allocator: str = "pool",
    input_mode: str = "prestaged",
    eng: Optional[SimEngine] = None,
    gpu: str = GPU,
    h2d: str = H2D,
    d2h: str = D2H,
    stream_prefix: str = "s",
) -> SimEngine:
    """The paper's asynchronous out-of-core pipeline.

    Parameters
    ----------
    order:
        Chunk execution order; default is decreasing flops (Section IV.C).
    divided_transfers:
        True (paper) splits each result transfer into ``split`` /
        ``1 - split`` portions interleaved with the next chunk's info
        transfers (Fig. 6).  False reproduces the naive schedule of
        Fig. 5: one monolithic result transfer that blocks the next
        chunk's info transfers on the single D2H engine.
    allocator:
        ``"pool"`` (paper) — no allocation commands at all;
        ``"dynamic"`` — malloc barriers serialize the streams, the
        behaviour the pre-allocation design removes.
    """
    _require_executed(profile)
    if num_streams < 1:
        raise ValueError("need at least one stream")
    if not 0.0 < split < 1.0:
        raise ValueError("split must be in (0, 1)")
    if allocator not in ("pool", "dynamic"):
        raise ValueError(f"unknown allocator {allocator!r}")

    if eng is None:
        eng = new_engine()
    ids = list(order) if order is not None else profile.order_by_flops_desc()
    m = len(ids)

    def malloc_barrier(label: str, stream: str) -> None:
        # a device allocation forbids concurrency with *anything* in
        # flight: depend on every submitted op
        eng.submit(label, gpu, cm.t_malloc(), deps=eng.all_submitted(),
                   stream=stream, kind="malloc")

    # per-position bookkeeping for the interleaved result transfers
    numeric_ops: List[Optional[SimOp]] = [None] * m
    loader = _PanelLoader(eng, cm, input_mode, h2d=h2d)

    def submit_result_part(pos: int, part: int, nbytes: int) -> None:
        cid = ids[pos]
        eng.submit(
            f"d2h_out{part}[{cid}]", d2h, cm.t_d2h(nbytes),
            deps=(numeric_ops[pos],),
            stream=f"{stream_prefix}{pos % num_streams}",
            chunk=cid, kind="output", bytes=nbytes, part=part,
        )

    for pos in range(m):
        cid = ids[pos]
        ch = profile.chunks[cid]
        stream = f"{stream_prefix}{pos % num_streams}"

        loader.require(ch, stream)

        eng.submit(f"analysis[{cid}]", gpu, cm.t_analysis(ch.input_nnz),
                   stream=stream, chunk=cid, kind="analysis")
        eng.submit(f"d2h_info1[{cid}]", d2h, cm.t_d2h(ch.analysis_bytes),
                   stream=stream, chunk=cid, kind="info", bytes=ch.analysis_bytes)

        if divided_transfers and pos >= 1:
            # first portion of the previous chunk's result rides the D2H
            # engine while this chunk runs its symbolic phase (Fig. 6)
            prev = profile.chunks[ids[pos - 1]]
            p1, _ = _split_output(prev, split)
            submit_result_part(pos - 1, 1, p1)

        if allocator == "dynamic":
            malloc_barrier(f"malloc_sym[{cid}]", stream)
        eng.submit(f"symbolic[{cid}]", gpu,
                   cm.t_symbolic(ch.flops, ch.nnz_out, ch.symbolic_kernels),
                   stream=stream, chunk=cid, kind="symbolic")
        eng.submit(f"d2h_info2[{cid}]", d2h, cm.t_d2h(ch.symbolic_bytes),
                   stream=stream, chunk=cid, kind="info", bytes=ch.symbolic_bytes)

        if pos >= 1:
            prev = profile.chunks[ids[pos - 1]]
            if divided_transfers:
                # second portion overlaps this chunk's numeric phase
                _, p2 = _split_output(prev, split)
                submit_result_part(pos - 1, 2, p2)
            else:
                # naive monolithic transfer (Fig. 5): submitted here, it
                # blocks the *next* chunk's info transfers behind it
                submit_result_part(pos - 1, 0, prev.output_bytes)

        if allocator == "dynamic":
            malloc_barrier(f"malloc_out[{cid}]", stream)
        numeric_ops[pos] = eng.submit(
            f"numeric[{cid}]", gpu,
            cm.t_numeric(ch.flops, ch.nnz_out, ch.numeric_kernels),
            stream=stream, chunk=cid, kind="numeric",
        )

    # drain the last chunk's result
    if m:
        last = profile.chunks[ids[m - 1]]
        if divided_transfers:
            p1, p2 = _split_output(last, split)
            submit_result_part(m - 1, 1, p1)
            submit_result_part(m - 1, 2, p2)
        else:
            submit_result_part(m - 1, 0, last.output_bytes)
    return eng


# ----------------------------------------------------------------------
# hybrid CPU side
# ----------------------------------------------------------------------
def add_cpu_chunks(
    eng: SimEngine,
    profile: ChunkProfile,
    cm: CostModel,
    chunk_ids: Sequence[int],
) -> None:
    """Queue the CPU's share of chunks (Algorithm 4 line 26).

    The multicore runs one chunk at a time with all threads — a single
    FIFO server whose per-chunk duration comes from the Nagasaka cost
    model.  No PCIe involvement: panels and results live in host memory.
    """
    global_cr = profile.compression_ratio()
    for cid in chunk_ids:
        ch = profile.chunks[cid]
        eng.submit(f"cpu_chunk[{cid}]", CPU,
                   cm.t_cpu_chunk(ch.flops, ch.nnz_out, cr=global_cr),
                   stream="cpu", chunk=cid, kind="cpu")


# ----------------------------------------------------------------------
# trace export
# ----------------------------------------------------------------------
def export_chrome_events(timeline, *, pid: Optional[int] = None,
                         process_name: str = "simulated (cost model)") -> List[dict]:
    """Export a simulated timeline in the observability layer's
    Chrome-trace-event format.

    Simulated schedules become their own *process* of the trace (default
    ``pid`` = :data:`~repro.observability.SIMULATED_PID`), so a measured
    run (pid 0) and its cost-model schedule — e.g. the Fig. 6 divided
    transfers — load side by side in one Perfetto window.
    """
    from ..observability import SIMULATED_PID, timeline_events

    return timeline_events(
        timeline, pid=SIMULATED_PID if pid is None else pid,
        process_name=process_name,
    )
