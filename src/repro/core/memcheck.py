"""Memory-accounting replay: does the planned grid really fit?

The planner sizes the chunk grid from analytic worst-case footprints; this
module *replays* an executed profile through the actual allocator models
(:class:`~repro.device.memory.MemoryPool` for the paper's pre-allocation
design, :class:`~repro.device.memory.DynamicAllocator` for the spECK
baseline) and reports the realized peak usage — an end-to-end consistency
check between the planner, the memory model, and the device budget, and
the source of the pool-utilization numbers in the ablation report.

Replay protocol per chunk (mirroring Fig. 3's allocation points):

1. analysis result (``rows * 8`` bytes);
2. group info + symbolic structures (hash tables over the upper-bound
   products: ``INTERMEDIATE_BYTES_PER_PRODUCT`` each);
3. the exactly-sized output (known only after the symbolic phase);
4. everything released when the chunk's transfer completes.

The asynchronous pipeline keeps ``buffers`` chunks in flight, so the pool
replay holds the previous chunk's output until its successor finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..device.memory import Allocation, DeviceOutOfMemory, DynamicAllocator, MemoryPool
from ..observability import as_tracer
from .chunks import ChunkProfile, ChunkStats, csr_bytes
from .planner import INTERMEDIATE_BYTES_PER_PRODUCT

__all__ = [
    "MemoryReplay",
    "replay_pool",
    "replay_dynamic",
    "chunk_device_bytes",
    "panel_row_products",
]


def chunk_device_bytes(rows: int, products: int) -> int:
    """Upper-bound device working set of one chunk, pre-execution.

    The same three allocations :func:`_chunk_allocs` replays (analysis
    result, symbolic intermediates, output CSR), with the output bounded
    by its worst case — ``nnz_out <= products`` — since the exact size
    is only known after the symbolic phase.  This is what the runtime
    governor checks a chunk against before dispatch: a chunk whose bound
    exceeds the device pool is re-split rather than submitted.
    """
    return (rows * 8
            + products * INTERMEDIATE_BYTES_PER_PRODUCT
            + csr_bytes(rows, products))


def panel_row_products(a_panel, b_panel) -> np.ndarray:
    """Per-row multiply products of ``a_panel @ b_panel`` (``GetFlops``
    row-resolved): for each row of the A panel, the sum over its
    elements of the matching B-panel row's nnz.  Drives the governor's
    re-split decisions — halving a row panel halves this array, not
    necessarily the work, so the split recurses on the actual bound.
    """
    b_row_nnz = np.diff(b_panel.row_offsets)
    gathered = b_row_nnz[a_panel.col_ids]
    csum = np.concatenate([[0], np.cumsum(gathered, dtype=np.int64)])
    return (csum[a_panel.row_offsets[1:]]
            - csum[a_panel.row_offsets[:-1]]).astype(np.int64)


@dataclass(frozen=True)
class MemoryReplay:
    """Outcome of a memory replay."""

    fits: bool
    peak_bytes: int
    capacity: int
    allocator: str
    failed_chunk: Optional[int] = None

    @property
    def utilization(self) -> float:
        return self.peak_bytes / self.capacity if self.capacity else 0.0


def _chunk_allocs(ch: ChunkStats) -> List[tuple]:
    """(tag, nbytes) allocations of one chunk, in Fig. 3 order."""
    products = ch.flops // 2
    return [
        ("analysis", ch.rows * 8),
        ("symbolic", products * INTERMEDIATE_BYTES_PER_PRODUCT),
        ("output", csr_bytes(ch.rows, max(ch.nnz_out, 0))),
    ]


def replay_pool(
    profile: ChunkProfile,
    device_memory: int,
    *,
    order: Optional[Sequence[int]] = None,
    buffers: int = 2,
    tracer=None,
) -> MemoryReplay:
    """Replay through the pre-allocated pool (the paper's design).

    The pool spans the device memory left after the resident inputs; with
    ``buffers`` chunks in flight, a chunk's allocations are freed only
    when the chunk ``buffers`` positions later begins.

    ``tracer`` samples a ``device_pool`` gauge after every chunk's
    allocations land — ``used`` / ``high_water`` / ``capacity`` — the
    pool-utilization stream behind the ablation report's numbers.
    """
    tracer = as_tracer(tracer)
    ids = list(order) if order is not None else profile.order_by_flops_desc()
    # resident inputs: derive from the profile's own panel byte counts
    a_bytes = max(
        (c.a_panel_bytes for c in profile.chunks), default=0
    ) * profile.grid.num_row_panels
    b_bytes = sum(
        c.b_panel_bytes for c in profile.chunks if c.row_panel == 0
    )
    capacity = device_memory - (a_bytes + b_bytes)
    if capacity <= 0:
        return MemoryReplay(False, 0, max(capacity, 0), "pool", ids[0] if ids else None)

    pool = MemoryPool(capacity)
    in_flight: List[List[Allocation]] = []
    try:
        for pos, cid in enumerate(ids):
            if len(in_flight) >= buffers:
                # oldest chunk's transfer is done; the pool is recycled by
                # compacting live chunks into a fresh epoch
                in_flight.pop(0)
                live = [a for chunk in in_flight for a in chunk]
                pool.reset()
                reloaded = []
                for a in live:
                    reloaded.append(pool.alloc(a.nbytes, tag=a.tag))
                # rebuild in_flight with the reloaded handles
                k = 0
                rebuilt = []
                for chunk in in_flight:
                    rebuilt.append(reloaded[k : k + len(chunk)])
                    k += len(chunk)
                in_flight = rebuilt
            ch = profile.chunks[cid]
            in_flight.append([pool.alloc(n, tag=t) for t, n in _chunk_allocs(ch)])
            if tracer.enabled:
                tracer.gauge("device_pool", used=pool.used,
                             high_water=pool.high_water,
                             capacity=capacity, chunk=cid)
    except DeviceOutOfMemory:
        return MemoryReplay(False, pool.high_water, capacity, "pool", cid)
    return MemoryReplay(True, pool.high_water, capacity, "pool")


def replay_dynamic(
    profile: ChunkProfile,
    device_memory: int,
    *,
    order: Optional[Sequence[int]] = None,
) -> MemoryReplay:
    """Replay through cudaMalloc-style allocation (synchronous baseline:
    one chunk in flight, allocations freed as phases complete)."""
    ids = list(order) if order is not None else profile.natural_order()
    a_bytes = max(
        (c.a_panel_bytes for c in profile.chunks), default=0
    ) * profile.grid.num_row_panels
    b_bytes = sum(c.b_panel_bytes for c in profile.chunks if c.row_panel == 0)
    capacity = device_memory - (a_bytes + b_bytes)
    if capacity <= 0:
        return MemoryReplay(False, 0, max(capacity, 0), "dynamic", ids[0] if ids else None)

    da = DynamicAllocator(capacity)
    try:
        for cid in ids:
            ch = profile.chunks[cid]
            live = [da.alloc(n, tag=t) for t, n in _chunk_allocs(ch)]
            # chunk transferred; everything released before the next one
            for a in live:
                da.free(a)
    except DeviceOutOfMemory:
        return MemoryReplay(False, da.high_water, capacity, "dynamic", cid)
    return MemoryReplay(True, da.high_water, capacity, "dynamic")
