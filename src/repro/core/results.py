"""Run results: the measured quantities the paper's figures report.

Every executor returns a :class:`RunResult` bundling the simulated
timeline with the derived metrics.  Following Section V.C, GFLOPS are
computed against the *total* time — "the execution times measured for
GFLOPS calculation include the time for transferring all chunks of the
output matrix to the CPU memory".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..device.trace import Timeline
from ..sparse.formats import CSRMatrix
from .chunks import ChunkProfile

__all__ = ["RunResult"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one out-of-core / hybrid / CPU run."""

    name: str                      # matrix or experiment label
    mode: str                      # "sync" | "async" | "hybrid" | "cpu"
    timeline: Timeline
    profile: ChunkProfile
    matrix: Optional[CSRMatrix] = None
    meta: dict = field(default_factory=dict)

    @property
    def total_flops(self) -> int:
        return self.profile.total_flops

    @property
    def elapsed(self) -> float:
        """Simulated end-to-end time (seconds), transfers included."""
        return self.timeline.makespan()

    @property
    def gflops(self) -> float:
        t = self.elapsed
        return self.total_flops / t / 1e9 if t > 0 else 0.0

    @property
    def measured_wall_seconds(self) -> float:
        """Measured host wall-clock of the real chunk execution (-1.0 when
        the profile predates measurement or was loaded from an old cache)."""
        return self.profile.measured_wall_seconds

    @property
    def measured_gflops(self) -> float:
        """Throughput of the *real* host execution (vs. the simulated
        :attr:`gflops`); 0.0 when no measurement was recorded."""
        return self.profile.measured_gflops

    @property
    def resumed_chunks(self) -> int:
        """Chunks served from a checkpoint manifest instead of recomputed
        (0 for a run that did not resume)."""
        return int(self.meta.get("resumed_chunks", 0))

    @property
    def transfer_fraction(self) -> float:
        """Fraction of total time with a PCIe transfer in flight (Fig. 4)."""
        return self.timeline.transfer_fraction()

    @property
    def d2h_fraction(self) -> float:
        return self.timeline.busy_fraction("d2h")

    @property
    def gpu_busy_fraction(self) -> float:
        return self.timeline.busy_fraction("gpu")

    def speedup_over(self, other: "RunResult") -> float:
        """``other.elapsed / self.elapsed`` — how much faster this run is."""
        if self.elapsed == 0:
            raise ZeroDivisionError("zero elapsed time")
        return other.elapsed / self.elapsed

    def summary(self) -> str:
        line = (
            f"{self.name} [{self.mode}] elapsed={self.elapsed * 1e3:.2f} ms  "
            f"GFLOPS={self.gflops:.3f}  transfer={self.transfer_fraction * 100:.1f}%"
        )
        if self.measured_wall_seconds >= 0:
            workers = self.meta.get("workers", 1)
            line += (
                f"  measured={self.measured_wall_seconds * 1e3:.2f} ms"
                f" ({self.measured_gflops:.3f} GFLOPS, workers={workers})"
            )
        if self.resumed_chunks:
            line += f"  resumed={self.resumed_chunks} chunks"
        return line
