"""Convenience: plan + profile in one call (no output retention)."""

from __future__ import annotations

from ..device.specs import NodeSpec
from ..sparse.formats import CSRMatrix
from .chunks import ChunkProfile, profile_chunks
from .planner import plan_grid

__all__ = ["profile_for"]


def profile_for(
    a: CSRMatrix,
    b: CSRMatrix,
    node: NodeSpec,
    *,
    name: str = "",
    kernel=None,
) -> ChunkProfile:
    """Plan the grid for ``node`` and execute/profile every chunk.

    ``kernel`` selects the accumulator family (``None`` = auto).  Disk
    caches storing these profiles must key on the *resolved* kernel wire
    form (:func:`repro.spgemm.kernels.resolved_wire`) — measured stage
    times are meaningless under a different kernel.
    """
    report = plan_grid(a, b, node)
    profile, _ = profile_chunks(
        a, b, report.grid, keep_outputs=False, name=name, kernel=kernel
    )
    return profile
