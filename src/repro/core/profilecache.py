"""Convenience: plan + profile in one call (no output retention)."""

from __future__ import annotations

from ..device.specs import NodeSpec
from ..sparse.formats import CSRMatrix
from .chunks import ChunkProfile, profile_chunks
from .planner import plan_grid

__all__ = ["profile_for"]


def profile_for(a: CSRMatrix, b: CSRMatrix, node: NodeSpec, *, name: str = "") -> ChunkProfile:
    """Plan the grid for ``node`` and execute/profile every chunk."""
    report = plan_grid(a, b, node)
    profile, _ = profile_chunks(a, b, report.grid, keep_outputs=False, name=name)
    return profile
