"""Chunk grid, per-chunk workload statistics, and chunk profiling.

The out-of-core framework partitions the output ``C`` into a grid of
*chunks*: chunk ``(i, j)`` is produced from row panel ``A[i]`` and column
panel ``B[j]`` (paper Algorithm 3).  Scheduling decisions — transfer
ordering (Section IV.C), hybrid assignment (Algorithm 4) — are made on
per-chunk workload statistics:

* ``flops`` is computable *before* any SpGEMM runs (Algorithm 4 lines
  6-13, ``GetFlops``), and :func:`chunk_flops` computes the whole grid's
  flop matrix in one vectorized pass;
* output nnz/bytes are known only after the chunk's kernel has executed;
  :func:`profile_chunks` runs the real kernels once and records everything,
  so that every scheduling variant afterwards is a cheap re-simulation of
  the same :class:`ChunkProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..sparse.formats import CSRMatrix
from ..sparse.partition import build_col_offsets, panel_boundaries
from ..spgemm.flops import compression_ratio

__all__ = [
    "STAT_FIELDS",
    "ChunkGrid",
    "ChunkStats",
    "ChunkProfile",
    "chunk_flops",
    "profile_chunks",
]

#: the serialized fields of :class:`ChunkStats`, in order — shared by the
#: profile disk cache and the checkpoint run manifest
STAT_FIELDS = (
    "chunk_id", "row_panel", "col_panel", "rows", "width",
    "flops", "a_panel_bytes", "b_panel_bytes", "input_nnz",
    "nnz_out", "output_bytes", "analysis_bytes",
    "symbolic_bytes", "symbolic_kernels", "numeric_kernels",
    "measured_seconds", "kernel",
    "analysis_seconds", "symbolic_seconds", "numeric_seconds",
)

#: bytes per CSR element (int64 column id + float64 value)
BYTES_PER_ELEM = 16
#: bytes per row offset entry
BYTES_PER_ROW = 8


def csr_bytes(n_rows: int, nnz: int) -> int:
    """Storage of a CSR block: offsets + column ids + values."""
    return (n_rows + 1) * BYTES_PER_ROW + nnz * BYTES_PER_ELEM


@dataclass(frozen=True)
class ChunkGrid:
    """The partition of the output into row x column panels."""

    row_bounds: np.ndarray  # len num_row_panels + 1
    col_bounds: np.ndarray  # len num_col_panels + 1

    @classmethod
    def regular(cls, n_rows: int, n_cols: int, num_row_panels: int, num_col_panels: int) -> "ChunkGrid":
        return cls(
            row_bounds=panel_boundaries(n_rows, num_row_panels),
            col_bounds=panel_boundaries(n_cols, num_col_panels),
        )

    @property
    def num_row_panels(self) -> int:
        return self.row_bounds.size - 1

    @property
    def num_col_panels(self) -> int:
        return self.col_bounds.size - 1

    @property
    def num_chunks(self) -> int:
        return self.num_row_panels * self.num_col_panels

    def chunk_id(self, row_panel: int, col_panel: int) -> int:
        """Row-major chunk numbering (Algorithm 4 line 8)."""
        return row_panel * self.num_col_panels + col_panel

    def panel_of(self, chunk_id: int) -> Tuple[int, int]:
        return divmod(chunk_id, self.num_col_panels)


@dataclass(frozen=True)
class ChunkStats:
    """Workload of one output chunk.

    ``flops`` is available pre-execution; the output-side fields are
    filled by profiling (-1 until then).
    """

    chunk_id: int
    row_panel: int
    col_panel: int
    rows: int                 # rows of the chunk (row-panel height)
    width: int                # columns of the chunk (col-panel width)
    flops: int
    a_panel_bytes: int
    b_panel_bytes: int
    input_nnz: int
    nnz_out: int = -1
    output_bytes: int = -1
    analysis_bytes: int = -1
    symbolic_bytes: int = -1
    symbolic_kernels: int = 1
    numeric_kernels: int = 1
    #: measured wall-clock of this chunk's real kernel run (seconds;
    #: -1.0 until executed).  Complements the *modeled* device times the
    #: simulators derive from flops/nnz — metrics can report model error.
    #: Excluded from equality: wall-clock varies run to run while the
    #: workload statistics are deterministic.
    measured_seconds: float = field(default=-1.0, compare=False)
    #: KernelSpec wire form that ran this chunk ("" for pre-execution
    #: stats and records from before kernel dispatch existed)
    kernel: str = field(default="", compare=False)
    #: per-stage measured wall seconds (-1.0 = not measured), same
    #: exclusion-from-equality rationale as measured_seconds
    analysis_seconds: float = field(default=-1.0, compare=False)
    symbolic_seconds: float = field(default=-1.0, compare=False)
    numeric_seconds: float = field(default=-1.0, compare=False)

    @property
    def executed(self) -> bool:
        return self.nnz_out >= 0

    @property
    def measured(self) -> bool:
        return self.measured_seconds >= 0.0

    @property
    def cr(self) -> float:
        """Per-chunk compression ratio (needs profiling)."""
        if not self.executed:
            raise ValueError("chunk not profiled yet")
        return compression_ratio(self.flops, self.nnz_out)


@dataclass(frozen=True)
class ChunkProfile:
    """Everything the simulators need about one (matrix, grid) workload."""

    grid: ChunkGrid
    chunks: Tuple[ChunkStats, ...]
    name: str = ""
    #: measured end-to-end wall-clock of the profiling execution (seconds;
    #: -1.0 when unknown, e.g. profiles loaded from old caches).  With
    #: parallel execution this is *less* than the per-chunk sum.
    #: Excluded from equality, like :attr:`ChunkStats.measured_seconds`.
    measured_wall_seconds: float = field(default=-1.0, compare=False)

    @property
    def total_flops(self) -> int:
        return sum(c.flops for c in self.chunks)

    @property
    def has_measured_times(self) -> bool:
        return bool(self.chunks) and all(c.measured for c in self.chunks)

    @property
    def total_measured_seconds(self) -> float:
        """Sum of per-chunk measured kernel times (CPU work, not wall)."""
        return sum(c.measured_seconds for c in self.chunks if c.measured)

    @property
    def measured_gflops(self) -> float:
        """Throughput against the measured end-to-end wall time."""
        if self.measured_wall_seconds <= 0:
            return 0.0
        return self.total_flops / self.measured_wall_seconds / 1e9

    @property
    def total_nnz_out(self) -> int:
        if not all(c.executed for c in self.chunks):
            raise ValueError("profile not fully executed")
        return sum(c.nnz_out for c in self.chunks)

    @property
    def total_output_bytes(self) -> int:
        return sum(c.output_bytes for c in self.chunks if c.executed)

    def compression_ratio(self) -> float:
        return compression_ratio(self.total_flops, self.total_nnz_out)

    def order_by_flops_desc(self) -> List[int]:
        """Chunk ids sorted by decreasing flops (Section IV.C / Alg. 4
        line 14).  Ties broken by chunk id for determinism."""
        return sorted(range(len(self.chunks)), key=lambda i: (-self.chunks[i].flops, i))

    def natural_order(self) -> List[int]:
        return list(range(len(self.chunks)))

    # ------------------------------------------------------------------
    # (de)serialization — profiles are cached on disk so that scheduling
    # sweeps never recompute the real kernels
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "row_bounds": self.grid.row_bounds.tolist(),
            "col_bounds": self.grid.col_bounds.tolist(),
            "measured_wall_seconds": self.measured_wall_seconds,
            "chunks": [
                {f: getattr(c, f) for f in STAT_FIELDS}
                for c in self.chunks
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChunkProfile":
        grid = ChunkGrid(
            row_bounds=np.asarray(payload["row_bounds"], dtype=np.int64),
            col_bounds=np.asarray(payload["col_bounds"], dtype=np.int64),
        )
        # profiles cached before timing landed lack the measured fields;
        # ChunkStats defaults fill them with the "unmeasured" sentinel
        chunks = tuple(ChunkStats(**c) for c in payload["chunks"])
        return cls(
            grid=grid, chunks=chunks, name=payload.get("name", ""),
            measured_wall_seconds=payload.get("measured_wall_seconds", -1.0),
        )


def chunk_flops(a: CSRMatrix, b: CSRMatrix, grid: ChunkGrid) -> np.ndarray:
    """Flops of every chunk, vectorized (``GetFlops`` for the whole grid).

    Result is a ``(num_row_panels, num_col_panels)`` int64 matrix.  Uses
    the ``col_offset`` split structure: nnz of each B row restricted to
    each column panel, gathered per A element, segment-summed per row
    panel.
    """
    splits = build_col_offsets(b, grid.col_bounds)
    per_row_per_panel = np.diff(splits, axis=1)  # (n_rows_B, num_col_panels)
    per_elem = per_row_per_panel[a.col_ids, :]   # (nnz_A, num_col_panels)

    out = np.zeros((grid.num_row_panels, grid.num_col_panels), dtype=np.int64)
    for rp in range(grid.num_row_panels):
        lo = int(a.row_offsets[grid.row_bounds[rp]])
        hi = int(a.row_offsets[grid.row_bounds[rp + 1]])
        out[rp, :] = per_elem[lo:hi, :].sum(axis=0)
    return 2 * out


def profile_chunks(
    a: CSRMatrix,
    b: CSRMatrix,
    grid: ChunkGrid,
    *,
    keep_outputs: bool = False,
    chunk_sink=None,
    name: str = "",
    workers: int = 1,
    window: Optional[int] = None,
    tracer=None,
    backend: Optional[str] = None,
    retry=None,
    crash_budget: int = 0,
    faults=None,
    manifest=None,
    resume_stats=None,
    governor=None,
    kernel=None,
    estimate=None,
) -> Tuple[ChunkProfile, Optional[List[List[CSRMatrix]]]]:
    """Execute every chunk's in-core kernel and collect its statistics.

    Returns the profile and, when ``keep_outputs``, the chunk matrices as
    ``outputs[row_panel][col_panel]`` for assembly/verification.

    ``chunk_sink(row_panel, col_panel, matrix)`` streams each chunk out as
    it is produced (e.g. into a :class:`~repro.core.spill.DiskChunkStore`)
    without retaining it — the host-side analog of the paper's chunk
    arrival, usable when even host memory cannot hold ``C``.

    ``workers`` > 1 runs the chunks concurrently through the chunk
    execution engine (:mod:`repro.core.executor`), dispatching in
    flops-descending order with at most ``window`` chunks in flight; the
    output is bit-identical to serial execution.  Per-chunk measured wall
    times are recorded in either mode.  ``backend`` picks where the
    kernels run (``serial`` / ``thread`` / ``process``); ``None`` keeps
    the legacy resolution (serial when ``workers == 1``, else threads).

    ``tracer`` (:mod:`repro.observability`) records the chunk lifecycle —
    queue wait, kernel phases, sink writes — without affecting results.

    ``retry`` / ``crash_budget`` / ``faults`` / ``manifest`` /
    ``resume_stats`` configure fault tolerance and checkpoint/resume,
    ``governor`` the runtime deadline/memory-pressure limits; see
    :func:`repro.core.executor.execute_chunk_grid`.

    ``kernel`` selects the accumulator family every chunk runs with
    (``None`` / wire string / :class:`~repro.spgemm.kernels.KernelSpec`);
    all kernels produce the same matrices (:mod:`repro.spgemm.kernels`).

    ``estimate`` (a :class:`~repro.spgemm.estimate.RowNnzEstimate`)
    feeds sampled chunk-size estimates to the governor and density
    hints to kernel dispatch; results are bit-identical either way.
    """
    from .executor import execute_chunk_grid  # deferred: executor imports chunks

    return execute_chunk_grid(
        a, b, grid,
        workers=workers, window=window,
        keep_outputs=keep_outputs, chunk_sink=chunk_sink, name=name,
        tracer=tracer, backend=backend,
        retry=retry, crash_budget=crash_budget, faults=faults,
        manifest=manifest, resume_stats=resume_stats, governor=governor,
        kernel=kernel, estimate=estimate,
    )
