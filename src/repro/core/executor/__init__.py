"""Pluggable chunk-execution engine: serial, thread, and process backends.

Public surface:

* :func:`execute_chunk_grid` — the driver (``backend=`` selects where
  chunk kernels run; all backends are bit-identical).
* planning helpers (:func:`plan_hybrid_lanes`, :func:`default_window`,
  :func:`flops_desc_order`, ...) shared by every backend.
* :class:`WorkerCrashed` — raised when a process-backend worker dies
  without delivering its result.
"""

from .engine import EXECUTOR_BACKENDS, execute_chunk_grid, resolve_backend_name
from .plan import (
    BUFFERS_PER_WORKER,
    default_window,
    flops_desc_order,
    plan_hybrid_lanes,
    split_by_flop_ratio,
    split_workers,
)
from .procpool import WorkerCrashed, resolve_mp_context

__all__ = [
    "BUFFERS_PER_WORKER",
    "EXECUTOR_BACKENDS",
    "WorkerCrashed",
    "default_window",
    "execute_chunk_grid",
    "flops_desc_order",
    "plan_hybrid_lanes",
    "resolve_backend_name",
    "resolve_mp_context",
    "split_by_flop_ratio",
    "split_workers",
]
