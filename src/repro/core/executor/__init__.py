"""Pluggable chunk-execution engine: serial, thread, and process backends.

Public surface:

* :func:`execute_chunk_grid` — the driver (``backend=`` selects where
  chunk kernels run; all backends are bit-identical).
* planning helpers (:func:`plan_hybrid_lanes`, :func:`default_window`,
  :func:`flops_desc_order`, ...) shared by every backend.
* fault tolerance (:mod:`~repro.core.executor.faults`):
  :class:`RetryPolicy` for per-chunk retries with backoff,
  :class:`FaultInjector` / :class:`FaultSpec` for chaos testing, and the
  failure taxonomy (:class:`ChunkExecutionError`,
  :class:`BackendUnavailable`, :class:`BackendDegradedWarning`,
  :class:`InjectedFault`).
* :class:`WorkerCrashed` — raised when process-backend worker deaths
  exceed the crash budget (default 0: any crash aborts the run).
"""

from .engine import (
    DEGRADATION_CHAIN,
    EXECUTOR_BACKENDS,
    execute_chunk_grid,
    resolve_backend_name,
)
from .faults import (
    FAULT_STAGES,
    FAULTS_ENV,
    NO_RETRY,
    BackendDegradedWarning,
    BackendUnavailable,
    ChunkExecutionError,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
)
from .plan import (
    BUFFERS_PER_WORKER,
    ChunkPlan,
    default_window,
    filter_lanes,
    flops_desc_order,
    plan_hybrid_lanes,
    split_by_flop_ratio,
    split_workers,
)
from .procpool import WorkerCrashed, resolve_mp_context
from ..governor import (
    ChunkCorruption,
    ChunkTimeout,
    Governor,
    GovernorConfig,
)

__all__ = [
    "BUFFERS_PER_WORKER",
    "DEGRADATION_CHAIN",
    "EXECUTOR_BACKENDS",
    "FAULTS_ENV",
    "FAULT_STAGES",
    "NO_RETRY",
    "BackendDegradedWarning",
    "BackendUnavailable",
    "ChunkCorruption",
    "ChunkExecutionError",
    "ChunkPlan",
    "ChunkTimeout",
    "Governor",
    "GovernorConfig",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "WorkerCrashed",
    "default_window",
    "execute_chunk_grid",
    "filter_lanes",
    "flops_desc_order",
    "plan_hybrid_lanes",
    "resolve_backend_name",
    "resolve_mp_context",
    "split_by_flop_ratio",
    "split_workers",
]
