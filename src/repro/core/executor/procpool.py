"""Parent-side process-pool lifecycle for the process executor backend.

A :class:`ProcessLanePool` owns the worker processes of one lane: it
starts them eagerly (so the fork happens from the main thread, *before*
any lane threads run — forking from a threaded process risks inheriting
held locks), waits for every worker to report that it attached the
shared operand segments, and then exchanges small task/result tuples
over a pair of queues.

Start method: ``fork`` where available (Linux; instant startup, and the
shared-memory design keeps it correct under ``spawn`` too), else
``spawn``.  Override with ``REPRO_MP_CONTEXT=fork|spawn|forkserver``.

Failure model: workers are daemonic (they die with the parent) and the
parent never blocks indefinitely — :meth:`next_result` polls with a
timeout and raises :class:`WorkerCrashed` when a worker disappears
without delivering its result, so a SIGKILL'd worker aborts the run
instead of hanging it.  All shared segments are reclaimed by the
caller's run-prefix sweep.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from typing import List, Optional

from .procworker import worker_main

__all__ = ["WorkerCrashed", "ProcessLanePool", "resolve_mp_context"]

#: seconds granted to workers to import + attach before startup fails
READY_TIMEOUT = 60.0
#: polling step while waiting on results (liveness is checked between polls)
POLL_SECONDS = 0.2


class WorkerCrashed(RuntimeError):
    """A worker process died without delivering a result."""


def resolve_mp_context(method: Optional[str] = None):
    """The multiprocessing context the process backend uses."""
    method = method or os.environ.get("REPRO_MP_CONTEXT")
    if method is None:
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


class ProcessLanePool:
    """The persistent worker processes of one executor lane."""

    def __init__(
        self,
        ctx,
        workers: int,
        lane_name: str,
        a_descs,
        b_descs,
        out_prefix: str,
        trace_enabled: bool,
        cache_max_bytes: Optional[int],
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.lane_name = lane_name
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._procs: List[mp.Process] = []
        for i in range(workers):
            name = f"{lane_name}-p{i}"
            proc = ctx.Process(
                target=worker_main,
                args=(name, self._task_q, self._result_q, a_descs, b_descs,
                      out_prefix, trace_enabled, cache_max_bytes),
                name=name,
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def wait_ready(self, timeout: float = READY_TIMEOUT) -> None:
        """Block until every worker attached its operand segments."""
        deadline = time.monotonic() + timeout
        ready = 0
        while ready < len(self._procs):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerCrashed(
                    f"lane {self.lane_name!r}: workers not ready after "
                    f"{timeout:.0f}s ({ready}/{len(self._procs)})"
                )
            try:
                msg = self._result_q.get(timeout=min(remaining, POLL_SECONDS))
            except queue_mod.Empty:
                self._check_alive()
                continue
            if msg[0] == "ready":
                ready += 1
            elif msg[0] == "init_err":
                raise WorkerCrashed(
                    f"worker {msg[1]} failed to initialize:\n{msg[2]}"
                )
            else:  # pragma: no cover - workers only init before tasks
                raise WorkerCrashed(f"unexpected startup message {msg[0]!r}")

    def submit(self, cid: int, rp: int, cp: int,
               t_submit_raw: Optional[float]) -> None:
        self._task_q.put((cid, rp, cp, t_submit_raw))

    def next_result(self):
        """The next completed-chunk payload, or raise :class:`WorkerCrashed`."""
        while True:
            try:
                msg = self._result_q.get(timeout=POLL_SECONDS)
            except queue_mod.Empty:
                self._check_alive()
                continue
            if msg[0] == "ok":
                return msg
            if msg[0] == "err":
                raise RuntimeError(
                    f"chunk {msg[1]} failed in worker:\n{msg[2]}"
                )
            raise WorkerCrashed(f"unexpected worker message {msg[0]!r}")

    def _check_alive(self) -> None:
        dead = [p for p in self._procs if not p.is_alive()]
        if not dead:
            return
        # a result may still be buffered in the queue; drain once more
        try:
            msg = self._result_q.get_nowait()
        except queue_mod.Empty:
            codes = {p.name: p.exitcode for p in dead}
            raise WorkerCrashed(
                f"lane {self.lane_name!r}: worker(s) died without a result: "
                f"{codes}"
            ) from None
        # put it back for the caller loop (ordering is irrelevant here)
        self._result_q.put(msg)

    def shutdown(self, join_timeout: float = 2.0) -> None:
        """Stop workers: sentinel first, then terminate stragglers."""
        for _ in self._procs:
            try:
                self._task_q.put_nowait(None)
            except Exception:
                break
        for p in self._procs:
            p.join(timeout=join_timeout)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=join_timeout)
        for q in (self._task_q, self._result_q):
            q.cancel_join_thread()
            q.close()
