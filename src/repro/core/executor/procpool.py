"""Parent-side process-pool lifecycle for the process executor backend.

A :class:`ProcessLanePool` owns the worker processes of one lane: it
starts them eagerly (so the fork happens from the main thread, *before*
any lane threads run — forking from a threaded process risks inheriting
held locks), waits for every worker to report that it attached the
shared operand segments, and then exchanges small task/result tuples
over a pair of queues.

Start method: ``fork`` where available (Linux; instant startup, and the
shared-memory design keeps it correct under ``spawn`` too), else
``spawn``.  Override with ``REPRO_MP_CONTEXT=fork|spawn|forkserver``.

Failure model — self-healing up to a crash budget:

* workers are daemonic (they die with the parent) and the parent never
  blocks indefinitely — :meth:`next_result` polls with a timeout and
  checks liveness between polls;
* each worker announces the chunk it dequeues (a ``start`` message), so
  when a worker dies the pool knows exactly which chunk was in flight;
* on a worker death within the ``crash_budget``, the pool sweeps the
  dead attempt's stray result segment, **requeues** the in-flight chunk
  (with a bumped attempt number, so segment names never collide), and
  **respawns** a replacement worker against the *existing* shared-memory
  operands — re-attachment is cheap, the operand copy is not repeated;
* once more workers have died than the budget allows,
  :class:`WorkerCrashed` is raised and the run aborts (the default
  budget is 0: any crash is fatal, the pre-existing behaviour).  All
  shared segments are then reclaimed by the caller's run-prefix sweep.

Two structural defenses make hard kills survivable:

* results (and the ``start`` announces) ride a ``SimpleQueue``, whose
  ``put`` writes the pipe synchronously from the worker's main thread —
  no feeder thread exists to be killed mid-write or while holding the
  shared write lock, so a dying worker can neither corrupt the result
  pipe nor silently drop messages it already sent;
* the in-flight claim additionally lives in a shared-memory **claims
  array** (one slot per worker ever spawned): a plain store cannot be
  lost, so the parent knows which chunk a dead worker held even when the
  kill lands between dequeuing a task and announcing it.  The only
  remaining window is the few instructions between ``task_q.get``
  returning and the claim store — reachable by an external ``SIGKILL``
  only, never by any in-pipeline kill point.

A crashed worker's already-queued result may still be delivered *after*
its chunk was requeued; :meth:`next_result` drops such stale duplicates
(and reclaims their result segments) by accepting only results for
chunks still registered in-flight.
"""

from __future__ import annotations

import contextlib
import itertools
import multiprocessing as mp
import os
import time
from collections import deque
from multiprocessing import resource_tracker as _resource_tracker
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ...sparse.shm import cleanup_segments
from .procworker import worker_main

__all__ = ["WorkerCrashed", "ProcessLanePool", "resolve_mp_context"]


def _tracker_lock():
    """CPython's process-global resource-tracker lock, if it has one.

    Every ``SharedMemory`` create/attach/unlink serializes on this lock.
    With concurrent runs (sharded execution drives N process pools from
    N threads), a worker fork can land while *another* run's thread
    holds it mid-register — the child inherits the lock permanently
    held and deadlocks on its first segment attach ("workers not ready").
    """
    tracker = getattr(_resource_tracker, "_resource_tracker", None)
    lock = getattr(tracker, "_lock", None)
    return lock if lock is not None and hasattr(lock, "acquire") else None


@contextlib.contextmanager
def _quiesced_tracker_fork():
    """Hold the resource-tracker lock across a worker fork.

    While held, no sibling thread can be mid-register/unregister, so the
    fork happens at a tracker-protocol message boundary.  The child's
    inherited copy of the lock *is* held — :func:`_reinit_tracker_lock`
    below (an ``at_fork`` child handler) replaces it with a fresh one.
    """
    _resource_tracker.ensure_running()
    lock = _tracker_lock()
    if lock is None:  # future interpreters: fall through, fork unguarded
        yield
        return
    with lock:
        yield


def _reinit_tracker_lock() -> None:
    tracker = getattr(_resource_tracker, "_resource_tracker", None)
    if tracker is not None and hasattr(tracker, "_lock"):
        # same lock flavour the interpreter chose (Lock on 3.11, RLock
        # on newer), so tracker-internal reentrancy assumptions hold
        tracker._lock = type(tracker._lock)()


if hasattr(os, "register_at_fork"):  # absent on Windows (spawn-only)
    os.register_at_fork(after_in_child=_reinit_tracker_lock)

#: seconds granted to workers to import + attach before startup fails
READY_TIMEOUT = 60.0
#: polling step while waiting on results (liveness is checked between polls)
POLL_SECONDS = 0.2
#: floor on the poll step when a watchdog tightens it
MIN_POLL_SECONDS = 0.01
#: a worker whose heartbeat has not advanced for this many intervals
#: while it holds a claim is declared hung and killed
HEARTBEAT_GRACE = 2.0


class WorkerCrashed(RuntimeError):
    """Worker process death exceeded the pool's crash budget."""


def resolve_mp_context(method: Optional[str] = None):
    """The multiprocessing context the process backend uses."""
    method = method or os.environ.get("REPRO_MP_CONTEXT")
    if method is None:
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


class ProcessLanePool:
    """The persistent worker processes of one executor lane.

    ``crash_budget`` is the number of worker deaths the pool absorbs by
    requeue + respawn before raising :class:`WorkerCrashed`;
    ``faults_spec`` (an encoded :class:`~.faults.FaultInjector` string)
    is handed to every worker — including respawned ones — so injected
    faults survive respawn under any start method; ``on_event`` is
    called as ``on_event(lane_name, worker_name, chunk_id, exitcode,
    kind=...)`` for every absorbed worker replacement (the engine
    records a respawn span); ``kind`` distinguishes hard crashes,
    watchdog timeout kills, and *stale* deaths — a worker dying after
    its chunk's result was already delivered, which costs a respawn but
    neither a requeue nor crash-budget charge.

    Watchdog (``deadline`` / ``heartbeat_interval``): the claims array
    is doubled — slot ``i`` holds worker ``i``'s in-flight chunk id,
    slot ``i + half`` its heartbeat counter, incremented by a daemon
    thread in the worker.  Between result polls the parent kills any
    worker that (a) has held one claim longer than ``deadline`` seconds
    or (b) whose heartbeat has not advanced for ``HEARTBEAT_GRACE x
    heartbeat_interval`` while claimed.  A timeout kill charges the
    crash budget and surfaces as a ``("hung", cid, attempt)`` message
    from :meth:`next_result` — the caller's retry policy, not the pool,
    decides whether the chunk is requeued.
    """

    def __init__(
        self,
        ctx,
        workers: int,
        lane_name: str,
        a_descs,
        b_descs,
        out_prefix: str,
        trace_enabled: bool,
        cache_max_bytes: Optional[int],
        *,
        kernel_spec: Optional[str] = None,
        crash_budget: int = 0,
        faults_spec: Optional[str] = None,
        on_event: Optional[Callable[..., None]] = None,
        deadline: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        is_done: Optional[Callable[[int], bool]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if crash_budget < 0:
            raise ValueError("crash_budget must be >= 0")
        self.lane_name = lane_name
        self._ctx = ctx
        self._task_q = ctx.Queue()
        # results ride a SimpleQueue on purpose: its put() writes the
        # pipe synchronously from the *calling* thread, with no feeder
        # thread.  A worker hard-killed at any in-pipeline kill point
        # therefore cannot die mid-write or while holding the queue's
        # write lock (which would poison the pipe for every survivor) —
        # every message a worker sent before dying is fully delivered.
        self._result_q = ctx.SimpleQueue()
        self._out_prefix = out_prefix
        self._crash_budget = crash_budget
        self._crashes = 0
        self._on_event = on_event
        self._deadline = deadline
        self._heartbeat = heartbeat_interval
        self._is_done = is_done
        # results may wait up to a full poll step, so a watchdog tightens
        # the polling cadence to stay responsive at small intervals
        step = POLL_SECONDS
        if deadline is not None:
            step = min(step, deadline / 4.0)
        if heartbeat_interval is not None:
            step = min(step, heartbeat_interval / 2.0)
        self._poll_step = max(step, MIN_POLL_SECONDS)
        self._spawn_args = (a_descs, b_descs, out_prefix, trace_enabled,
                            cache_max_bytes, kernel_spec, faults_spec,
                            heartbeat_interval)
        self._serial = itertools.count()   # claim-slot allocator
        self._spawn_seq = itertools.count()  # unique worker naming
        self._free_slots: List[int] = []
        self._procs: List[mp.Process] = []
        #: worker name -> chunk id it announced (None while idle)
        self._running: Dict[str, Optional[int]] = {}
        #: worker name -> its slot in the shared claims array
        self._slots: Dict[str, int] = {}
        #: chunk id -> last submitted task tuple, for crash requeue
        self._tasks: Dict[int, Tuple] = {}
        #: watchdog kills waiting to surface via next_result
        self._hung: Deque[Tuple[int, int]] = deque()
        #: worker name -> (cid, claim seen at, beat value, beat changed at)
        self._watch: Dict[str, List] = {}
        # crash-proof in-flight claims, doubled for heartbeats: slot i
        # holds the chunk id worker-slot i is processing (-1 = idle),
        # slot i + half its heartbeat counter.  Dead workers' slots are
        # recycled, so workers + crash_budget slots bound the concurrently
        # live set even though stale respawns are not budget-charged.
        self._claim_slots = workers + crash_budget
        self._claims = ctx.Array("i", 2 * self._claim_slots, lock=False)
        for i in range(self._claim_slots):
            self._claims[i] = -1
        for _ in range(workers):
            self._spawn_worker()

    def _spawn_worker(self) -> mp.Process:
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            slot = next(self._serial)
        name = f"{self.lane_name}-p{next(self._spawn_seq)}"
        proc = self._ctx.Process(
            target=worker_main,
            args=(name, self._task_q, self._result_q) + self._spawn_args
            + (slot, self._claims),
            name=name,
            daemon=True,
        )
        with _quiesced_tracker_fork():
            proc.start()
        self._procs.append(proc)
        self._running[name] = None
        self._slots[name] = slot
        return proc

    def wait_ready(self, timeout: float = READY_TIMEOUT) -> None:
        """Block until every worker attached its operand segments."""
        deadline = time.monotonic() + timeout
        ready = 0
        while ready < len(self._procs):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerCrashed(
                    f"lane {self.lane_name!r}: workers not ready after "
                    f"{timeout:.0f}s ({ready}/{len(self._procs)})"
                )
            if not self._poll_result(min(remaining, POLL_SECONDS)):
                self._check_alive()
                continue
            msg = self._result_q.get()
            if msg[0] == "ready":
                ready += 1
            elif msg[0] == "init_err":
                raise WorkerCrashed(
                    f"worker {msg[1]} failed to initialize:\n{msg[2]}"
                )
            else:  # pragma: no cover - workers only init before tasks
                raise WorkerCrashed(f"unexpected startup message {msg[0]!r}")

    def _poll_result(self, timeout: float) -> bool:
        """Whether a result message is readable within ``timeout`` seconds.

        ``SimpleQueue`` exposes no timed ``get``; polling the underlying
        connection keeps the liveness checks between waits."""
        return self._result_q._reader.poll(timeout)

    def submit(self, cid: int, rp: int, cp: int,
               t_submit_raw: Optional[float], attempt: int = 1) -> None:
        task = (cid, rp, cp, t_submit_raw, attempt)
        self._tasks[cid] = task
        self._task_q.put(task)

    def next_result(self) -> Tuple:
        """The next terminal chunk message — an ``("ok", ...)`` result
        payload, an ``("err", cid, traceback, attempt, exc_type)``
        failure, or a ``("hung", cid, attempt)`` watchdog kill, for the
        caller's retry policy to rule on.  Raises :class:`WorkerCrashed`
        once worker deaths exceed the budget.
        """
        while True:
            if self._hung:
                return ("hung",) + self._hung.popleft()
            if not self._poll_result(self._poll_step):
                self._check_alive()
                self._check_watchdog()
                continue
            msg = self._result_q.get()
            kind = msg[0]
            if kind == "start":
                self._running[msg[2]] = msg[1]
                continue
            if kind == "ready":        # a respawned worker coming online
                continue
            if kind in ("ok", "err"):
                cid = msg[1]
                attempt = msg[7] if kind == "ok" else msg[3]
                task = self._tasks.get(cid)
                if task is None or task[4] != attempt:
                    # stale result: a crashed worker's buffered message
                    # surfacing after its chunk was requeued (its segment
                    # was swept then) or after the redo already delivered.
                    # Drop it, reclaiming any orphan segment.
                    if kind == "ok":
                        cleanup_segments(f"{self._out_prefix}-o{cid}.{attempt}")
                    continue
                self._task_done(cid)
                return msg
            raise WorkerCrashed(f"unexpected worker message {msg[0]!r}")

    def _task_done(self, cid: int) -> None:
        self._tasks.pop(cid, None)
        for name, running_cid in self._running.items():
            if running_cid == cid:
                self._running[name] = None

    def _check_alive(self) -> None:
        """Detect dead workers; requeue their chunks and respawn within
        the crash budget, raise :class:`WorkerCrashed` beyond it.

        Deaths are classified first: a *stale* death — the worker's
        claimed chunk was already delivered (buffered result, consumed
        result, or durably checkpointed per ``is_done``) — costs a
        respawn but neither a requeue nor a crash-budget charge, so a
        worker dying on its way down after handing over its result can
        never fail an otherwise-complete run."""
        dead = [p for p in self._procs if not p.is_alive()]
        if not dead:
            return
        # drain buffered messages first: a result (or start announce) may
        # have been queued before the death, changing what needs requeue
        buffered = []
        while self._poll_result(0):
            msg = self._result_q.get()
            if msg[0] == "start":
                self._running[msg[2]] = msg[1]
            else:
                buffered.append(msg)
        delivered = {m[1] for m in buffered if m[0] in ("ok", "err")}

        plans = []
        for proc in dead:
            # the shared claims array is the authority on what the dead
            # worker held: a queue announce can be lost to an unflushed
            # feeder thread, a shared-memory store cannot
            slot = self._slots[proc.name]
            cid = self._claims[slot] if self._claims[slot] >= 0 else None
            stale = cid is not None and (
                cid in delivered
                or self._tasks.get(cid) is None
                or (self._is_done is not None and self._is_done(cid))
            )
            plans.append((proc, slot, cid, stale))

        self._crashes += sum(1 for _, _, _, stale in plans if not stale)
        if self._crashes > self._crash_budget:
            # buffered results are dropped: the run is aborting, and the
            # caller's prefix sweep reclaims the segments they point at
            codes = {p.name: p.exitcode for p in dead}
            raise WorkerCrashed(
                f"lane {self.lane_name!r}: worker crash budget exhausted "
                f"({self._crashes} > {self._crash_budget}); dead: {codes}"
            )

        for proc, slot, cid, stale in plans:
            self._retire(proc, slot)
            if stale:
                # nothing to requeue — the chunk's result already made
                # it out; sweep any segment a duplicate attempt leaked
                if cid not in delivered:
                    cleanup_segments(f"{self._out_prefix}-o{cid}.")
            elif cid is not None:
                task = self._tasks.get(cid)
                if task is not None:
                    # the crashed attempt may have created (and leaked)
                    # its result segment; sweep it before the redo
                    cleanup_segments(f"{self._out_prefix}-o{cid}.{task[4]}")
                    redo = task[:4] + (task[4] + 1,)
                    self._tasks[cid] = redo
                    self._task_q.put(redo)
            self._spawn_worker()
            if self._on_event is not None:
                self._on_event(self.lane_name, proc.name, cid, proc.exitcode,
                               kind="stale" if stale else "crash")

        for msg in buffered:
            self._result_q.put(msg)

    def _retire(self, proc, slot: int) -> None:
        """Drop a dead worker from the books and recycle its claim slot."""
        self._procs.remove(proc)
        self._running.pop(proc.name, None)
        self._watch.pop(proc.name, None)
        self._slots.pop(proc.name, None)
        self._claims[slot] = -1
        self._claims[slot + self._claim_slots] = 0
        self._free_slots.append(slot)

    # ------------------------------------------------------------------
    # hang watchdog
    # ------------------------------------------------------------------
    def _check_watchdog(self) -> None:
        """Kill workers that overran the chunk deadline or whose
        heartbeat stalled while holding a claim."""
        if self._deadline is None and self._heartbeat is None:
            return
        now = time.monotonic()
        half = self._claim_slots
        for proc in list(self._procs):
            slot = self._slots.get(proc.name)
            if slot is None:
                continue
            cid = self._claims[slot]
            if cid < 0:
                self._watch.pop(proc.name, None)
                continue
            beat = self._claims[slot + half]
            st = self._watch.get(proc.name)
            if st is None or st[0] != cid:
                self._watch[proc.name] = [cid, now, beat, now]
                continue
            if beat != st[2]:
                st[2] = beat
                st[3] = now
            overdue = (self._deadline is not None
                       and now - st[1] >= self._deadline)
            stalled = (self._heartbeat is not None
                       and now - st[3] >= HEARTBEAT_GRACE * self._heartbeat)
            if overdue or stalled:
                self._kill_hung(proc, slot, cid,
                                "deadline" if overdue else "heartbeat")

    def _kill_hung(self, proc, slot: int, cid: int, why: str) -> None:
        """Kill one hung worker: charge the crash budget, surface a
        ``("hung", cid, attempt)`` message, respawn a replacement.  The
        chunk is *not* auto-requeued — the caller's retry policy rules."""
        proc.kill()
        proc.join(timeout=READY_TIMEOUT)
        self._crashes += 1
        if self._crashes > self._crash_budget:
            raise WorkerCrashed(
                f"lane {self.lane_name!r}: hung worker {proc.name} "
                f"({why}) exhausted the crash budget "
                f"({self._crashes} > {self._crash_budget})"
            )
        task = self._tasks.pop(cid, None)
        attempt = task[4] if task is not None else 1
        # the hung attempt may have created its result segment already
        cleanup_segments(f"{self._out_prefix}-o{cid}.{attempt}")
        self._retire(proc, slot)
        self._hung.append((cid, attempt))
        self._spawn_worker()
        if self._on_event is not None:
            self._on_event(self.lane_name, proc.name, cid, proc.exitcode,
                           kind="timeout")

    def shutdown(self, join_timeout: float = 2.0) -> None:
        """Stop workers: sentinel first, then terminate stragglers."""
        for _ in self._procs:
            try:
                self._task_q.put_nowait(None)
            except Exception:
                break
        for p in self._procs:
            p.join(timeout=join_timeout)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=join_timeout)
        self._task_q.cancel_join_thread()
        self._task_q.close()
        self._result_q.close()
