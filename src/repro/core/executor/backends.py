"""Executor backends: serial, thread, and process chunk execution.

All three drive the same :class:`~repro.core.executor.engine.GridJob`
and therefore produce bit-identical outputs and identical profiles (up
to wall-clock fields).  They differ only in *where* chunk kernels run:

========  ==========================================  =====================
backend   chunk kernels run on                        operand transport
========  ==========================================  =====================
serial    the calling thread, natural order           (in-process)
thread    a bounded-window ``ThreadPoolExecutor``     shared by reference
process   persistent daemon worker *processes*        shared memory, 1 copy
========  ==========================================  =====================

The process backend's data path, per run:

1. the parent copies each CSR panel of ``A`` and ``B`` into one
   :class:`~repro.sparse.shm.SharedCSR` segment (once per run);
2. each worker attaches every segment at initialization and rebuilds
   zero-copy ``CSRMatrix`` views — no per-chunk operand pickling;
3. per chunk, the worker writes the result CSR into a fresh shared
   segment sized from the kernel's exact (symbolic) allocation and sends
   back a small descriptor tuple;
4. the parent attaches the result segment, copies the chunk out (one
   memcpy — a deterministic lifetime beats a borrowed mapping), unlinks
   it, and merges the worker's locally-recorded trace spans.

Cleanup is crash-proof by construction: every segment of a run shares a
:func:`~repro.sparse.shm.run_prefix`, unlinked in ``finally`` here,
guarded by ``atexit`` hooks in both parent and workers, and — for hard
worker crashes — reclaimed by a prefix sweep of ``/dev/shm``.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, Tuple

from ...device.memory import DeviceOutOfMemory
from ...sparse.ops import DEFAULT_CACHE_BYTES
from ...sparse.shm import (
    SharedCSR,
    cleanup_segments,
    register_cleanup_prefix,
    run_prefix,
    unregister_cleanup_prefix,
)
from ..governor.watchdog import ChunkTimeout
from .engine import GridJob, run_lanes_concurrently
from .faults import BackendUnavailable, ChunkExecutionError
from .procpool import ProcessLanePool, WorkerCrashed, resolve_mp_context

__all__ = ["make_backend", "SerialBackend", "ThreadBackend", "ProcessBackend"]

LaneSpec = Tuple[Sequence[int], int]


def make_backend(name: str):
    """Instantiate the named executor backend."""
    try:
        return {"serial": SerialBackend,
                "thread": ThreadBackend,
                "process": ProcessBackend}[name]()
    except KeyError:
        raise ValueError(f"unknown backend {name!r}") from None


class SerialBackend:
    """Chunks inline on the calling thread — the reference path.

    Explicit lanes are honored but drained sequentially, in lane order
    (the single-worker hybrid semantics of ``plan_hybrid_lanes``)."""

    name = "serial"

    def execute(self, job: GridJob, lanes: Sequence[LaneSpec],
                lane_names: Sequence[str],
                window_of: Callable[[int], int]) -> None:
        tracer = job.tracer
        for (ids, _w), lane in zip(lanes, lane_names):
            for i, cid in enumerate(ids):
                if tracer.enabled:
                    tracer.gauge(f"lane[{lane}]",
                                 queue_depth=len(ids) - i - 1, in_flight=1)
                job.run_chunk_with_retry(cid)


class ThreadBackend:
    """Bounded-window thread pool per lane.

    numpy's vectorized kernels release the GIL, so threads overlap the
    heavy loops; the pure-python glue still serializes.  Cheapest to
    start — the right backend for tracing runs, small grids, and hosts
    where process startup dominates."""

    name = "thread"

    def execute(self, job: GridJob, lanes: Sequence[LaneSpec],
                lane_names: Sequence[str],
                window_of: Callable[[int], int]) -> None:
        runners = [
            self._lane_runner(job, ids, lane_workers, window_of(lane_workers),
                              lane_names[i])
            for i, (ids, lane_workers) in enumerate(lanes)
        ]
        run_lanes_concurrently(runners, lane_names)

    def _lane_runner(self, job: GridJob, order: Sequence[int], workers: int,
                     window: int, lane: str) -> Callable[[], None]:
        return lambda: self._run_lane(job, order, workers, window, lane)

    def _run_lane(self, job: GridJob, order: Sequence[int], workers: int,
                  window: int, lane: str) -> None:
        """Drain one lane's chunks through a bounded-window worker pool.

        ``on_done`` is invoked from this (lane) thread only — completion
        handling is serialized per lane; cross-lane races are handled by
        the job's sink lock.  ``tracer`` records a ``queue_wait`` span
        per chunk (submit-to-start latency on the worker's track) and
        samples the lane's queue depth / in-flight occupancy as gauges.
        """
        tracer = job.tracer
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if workers <= 1:
            for i, cid in enumerate(order):
                if tracer.enabled:
                    tracer.gauge(f"lane[{lane}]",
                                 queue_depth=len(order) - i - 1, in_flight=1)
                job.run_chunk_with_retry(cid)
            return
        queue = list(order)
        pos = 0
        try:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"{lane}-w"
            )
        except (RuntimeError, OSError) as exc:  # e.g. thread limit reached
            raise BackendUnavailable("thread", str(exc)) from exc
        with pool:
            in_flight = {}  # future -> (chunk id, attempt number)

            def submit(cid: int, attempt: int):
                # chunks whose worst-case working set overflows the
                # device pool go straight to the re-split path
                run = (job.run_chunk_resplit if job.needs_resplit(cid)
                       else job.run_chunk_local)
                if not tracer.enabled:
                    in_flight[pool.submit(run, cid)] = (cid, attempt)
                    return
                t_submit = tracer.now()

                def traced():
                    tracer.add_span(f"queue_wait[{cid}]", "queue",
                                    t_submit, tracer.now(), chunk=cid, lane=lane)
                    return run(cid)

                in_flight[pool.submit(traced)] = (cid, attempt)

            try:
                while pos < len(queue) or in_flight:
                    while pos < len(queue) and len(in_flight) < window:
                        cid = queue[pos]
                        # host-memory admission: block only when nothing
                        # is in flight (otherwise wait for a completion
                        # to free budget before dispatching more)
                        if not job.admit_host(cid, may_wait=not in_flight):
                            break
                        submit(cid, 1)
                        pos += 1
                    if tracer.enabled:
                        tracer.gauge(f"lane[{lane}]",
                                     queue_depth=len(queue) - pos,
                                     in_flight=len(in_flight))
                    done, _pending = wait(in_flight, return_when=FIRST_COMPLETED)
                    for fut in done:
                        cid, attempt = in_flight.pop(fut)
                        try:
                            job.on_done(*fut.result())
                            job.release_host(cid)
                        except DeviceOutOfMemory:
                            # the kernel overflowed the device pool:
                            # recover via adaptive re-splitting
                            job.on_done(*job.run_chunk_resplit(cid))
                            job.release_host(cid)
                        except BaseException as exc:
                            if isinstance(exc, ChunkTimeout):
                                job.note_timeout(cid, attempt)
                            # a failed attempt (kernel or sink) re-enters
                            # the window after the policy's backoff
                            delay = job.next_retry(cid, attempt, exc)
                            if delay is None:
                                job.release_host(cid)
                                raise
                            if delay > 0:
                                time.sleep(delay)
                            submit(cid, attempt + 1)
            except BaseException:
                for fut in in_flight:
                    fut.cancel()
                raise


class ProcessBackend:
    """Worker processes with shared-memory operand transport (no GIL).

    Pools are created — and worker processes forked — on the *calling*
    (main) thread before any lane threads start: forking from a threaded
    process risks cloning held locks into the child."""

    name = "process"

    def __init__(self, *, mp_context: Optional[str] = None,
                 cache_max_bytes: Optional[int] = DEFAULT_CACHE_BYTES) -> None:
        self._mp_context = mp_context
        self._cache_max_bytes = cache_max_bytes

    def execute(self, job: GridJob, lanes: Sequence[LaneSpec],
                lane_names: Sequence[str],
                window_of: Callable[[int], int]) -> None:
        tracer = job.tracer
        prefix = run_prefix()
        register_cleanup_prefix(prefix)
        segments: List[SharedCSR] = []
        pools: List[ProcessLanePool] = []
        try:
            # establishment phase: shared operands + worker pools.  A
            # failure here means *no* chunk has run — signalled as
            # BackendUnavailable so the engine can degrade to threads
            # instead of failing the run.
            try:
                # operand panels into shared memory, once per run
                a_descs = []
                for rp in range(job.grid.num_row_panels):
                    seg = SharedCSR.create(job.row_panels[rp], f"{prefix}-a{rp}")
                    segments.append(seg)
                    a_descs.append(seg.descriptor)
                b_descs = []
                for cp in range(job.grid.num_col_panels):
                    seg = SharedCSR.create(job.col_panels[cp], f"{prefix}-b{cp}")
                    segments.append(seg)
                    b_descs.append(seg.descriptor)

                ctx = resolve_mp_context(self._mp_context)
                faults_spec = job.faults.encode() if job.faults.enabled else None
                gov = job.governor
                heartbeat = gov.heartbeat_interval if gov is not None else None
                for i, (_ids, lane_workers) in enumerate(lanes):
                    pools.append(ProcessLanePool(
                        ctx, lane_workers, lane_names[i], a_descs, b_descs,
                        prefix, tracer.enabled, self._cache_max_bytes,
                        kernel_spec=job.kernel.encode(),
                        crash_budget=job.crash_budget,
                        faults_spec=faults_spec,
                        on_event=job.note_respawn,
                        deadline=job.deadline_seconds,
                        heartbeat_interval=heartbeat,
                        is_done=lambda cid: job.stats_by_id[cid] is not None,
                    ))
                for pool in pools:
                    pool.wait_ready()
            except (WorkerCrashed, OSError) as exc:
                raise BackendUnavailable("process", str(exc)) from exc

            runners = [
                self._lane_runner(job, pools[i], ids,
                                  window_of(lane_workers), lane_names[i])
                for i, (ids, lane_workers) in enumerate(lanes)
            ]
            run_lanes_concurrently(runners, lane_names)
        finally:
            for pool in pools:
                pool.shutdown()
            for seg in segments:
                seg.close()
                seg.unlink()
            # reclaim stray per-chunk result segments (worker crash,
            # KeyboardInterrupt mid-drain, sink exception, ...)
            cleanup_segments(prefix)
            unregister_cleanup_prefix(prefix)

    def _lane_runner(self, job: GridJob, pool: ProcessLanePool,
                     order: Sequence[int], window: int,
                     lane: str) -> Callable[[], None]:
        return lambda: self._drain_lane(job, pool, order, window, lane)

    def _drain_lane(self, job: GridJob, pool: ProcessLanePool,
                    order: Sequence[int], window: int, lane: str) -> None:
        """Submit up to ``window`` chunks to the lane's workers and funnel
        completions — shared-memory result segments — into the job.

        The window caps outstanding result segments as well as in-flight
        compute: a segment exists from kernel completion in the worker
        until consumption here, and at most ``window`` chunks can be past
        submission and unconsumed."""
        tracer = job.tracer
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        order = list(order)
        pos = 0
        in_flight = 0
        result_bytes_live = 0
        while pos < len(order) or in_flight:
            while pos < len(order) and in_flight < window:
                cid = order[pos]
                if not job.admit_host(cid, may_wait=not in_flight):
                    break
                if job.needs_resplit(cid):
                    # oversized for the device pool: computed parent-side
                    # through the re-split path instead of shipping a
                    # chunk to a worker that is known to overflow
                    job.run_chunk_with_retry(cid)
                    pos += 1
                    continue
                rp, cp = job.grid.panel_of(cid)
                pool.submit(cid, rp, cp,
                            time.perf_counter() if tracer.enabled else None)
                pos += 1
                in_flight += 1
            if tracer.enabled:
                tracer.gauge(f"lane[{lane}]",
                             queue_depth=len(order) - pos,
                             in_flight=in_flight)
            if not in_flight:
                # every remaining chunk was computed parent-side (inline
                # re-split) — no worker owes a result to wait on
                continue
            payload = pool.next_result()
            if payload[0] == "hung":
                # the watchdog killed a worker whose heartbeat stalled
                # (or whose chunk overran its deadline): account the
                # timeout, then let the retry policy decide whether the
                # chunk re-enters the queue
                _tag, cid, attempt = payload
                exc = ChunkTimeout(cid, attempt=attempt,
                                   deadline=job.deadline_seconds,
                                   reason="worker hung; killed by watchdog")
                job.note_timeout(cid, attempt)
                delay = job.next_retry(cid, attempt, exc)
                if delay is None:
                    raise exc
                if delay > 0:
                    time.sleep(delay)
                rp, cp = job.grid.panel_of(cid)
                pool.submit(cid, rp, cp,
                            time.perf_counter() if tracer.enabled else None,
                            attempt + 1)
                continue
            if payload[0] == "err":
                # a chunk failed inside a worker: consult the retry
                # policy, back off, and resubmit (the chunk stays
                # in flight — the redo owes us exactly one result)
                _tag, cid, tb, attempt, ekind = payload
                if ekind == "DeviceOutOfMemory":
                    # the worker's kernel overflowed the device pool:
                    # recover parent-side by re-splitting the row panel
                    job.on_done(*job.run_chunk_resplit(cid))
                    job.release_host(cid)
                    in_flight -= 1
                    continue
                exc = ChunkExecutionError(cid, attempt, tb)
                delay = job.next_retry(cid, attempt, exc)
                if delay is None:
                    raise exc
                if delay > 0:
                    time.sleep(delay)
                rp, cp = job.grid.panel_of(cid)
                pool.submit(cid, rp, cp,
                            time.perf_counter() if tracer.enabled else None,
                            attempt + 1)
                continue
            in_flight -= 1
            desc = payload[3]
            result_bytes_live += desc.nbytes
            if tracer.enabled:
                tracer.gauge(f"shm[{lane}]", result_bytes=result_bytes_live,
                             in_flight=in_flight)
            try:
                try:
                    job.on_done(*self._consume(job, payload))
                    job.release_host(payload[1])
                except BaseException as exc:
                    # the kernel succeeded but the parent-side sink
                    # failed: the retry policy decides whether the chunk
                    # is recomputed (the segment is already consumed, so
                    # a redo goes through the full kernel again)
                    cid, attempt = payload[1], payload[7]
                    delay = job.next_retry(cid, attempt, exc)
                    if delay is None:
                        job.release_host(cid)
                        raise
                    if delay > 0:
                        time.sleep(delay)
                    rp, cp = job.grid.panel_of(cid)
                    pool.submit(cid, rp, cp,
                                time.perf_counter() if tracer.enabled else None,
                                attempt + 1)
                    in_flight += 1
            finally:
                result_bytes_live -= desc.nbytes

    def _consume(self, job: GridJob, payload):
        """Turn one worker result descriptor into ``on_done`` arguments:
        attach the shared result segment, copy the chunk out, unlink the
        segment, and merge the worker's trace spans/gauges."""
        _tag, cid, stats, desc, elapsed, spans, gauges, _attempt = payload
        shared = SharedCSR.attach(desc)
        try:
            matrix = shared.copy_matrix()
        finally:
            shared.close()
            shared.unlink()  # ownership transferred on handoff
        tracer = job.tracer
        if tracer.enabled:
            for name, cat, lane, raw_s, raw_e, args in spans:
                tracer.add_span(name, cat, tracer.rebase_raw(raw_s),
                                tracer.rebase_raw(raw_e), lane=lane, **args)
            for name, raw_ts, values in gauges:
                tracer.add_gauge(name, tracer.rebase_raw(raw_ts), **values)
        return cid, stats, matrix, elapsed
