"""Worker-process side of the process executor backend.

Each worker attaches the shared-memory operand panels **once** at
startup (zero-copy :class:`~repro.sparse.shm.SharedCSR` views), builds
its own per-row-panel :class:`~repro.sparse.ops.RowSliceCache`, then
loops on the task queue running :func:`~repro.spgemm.twophase.\
spgemm_twophase` per chunk.  The result chunk is written into a fresh
per-chunk shared-memory segment sized exactly to the computed CSR (the
symbolic phase's exact allocation), so the only pickled payload per
chunk is a small descriptor tuple — stats, segment name, timings, and
(when tracing) the worker-local spans.

Tracing: workers cannot append to the parent's ``Tracer``, so a
:class:`SpanBuffer` records spans/gauges with **raw**
``time.perf_counter()`` stamps (a system-wide monotonic clock,
comparable across processes) and ships them in the result descriptor;
the parent rebases them onto its tracer's t=0 and merges.

Cleanup: a created-but-not-yet-handed-off result segment is tracked in
``_PENDING``; both a ``finally`` block and an ``atexit`` guard unlink it
if the worker dies before handoff.  Hard crashes (``os._exit``,
``SIGKILL``) skip both — those are covered by the parent's run-prefix
sweep (:func:`repro.sparse.shm.cleanup_segments`).
"""

from __future__ import annotations

import atexit
import os
import threading
import time
import traceback
from typing import Dict, List, Optional, Tuple

from ...sparse.ops import RowSliceCache
from ...sparse.shm import SharedCSR, SharedCSRDescriptor, cleanup_segments

__all__ = ["worker_main", "SpanBuffer"]

#: test hook: a chunk id; the worker executing it dies via ``os._exit``
#: *after* creating its result segment — simulating a hard crash that
#: leaks a segment for the parent's prefix sweep to reclaim.
KILL_CHUNK_ENV = "REPRO_TEST_KILL_CHUNK"

#: test hook: a chunk id; the worker executing it dies via ``os._exit``
#: *after* queueing its ok result but before clearing its claim — the
#: "stale death" window the pool must absorb without requeue or budget
#: charge (the result already made it out).
KILL_AFTER_RESULT_ENV = "REPRO_TEST_KILL_AFTER_RESULT"


def _start_heartbeat(claims, beat_slot: int, interval: float) -> None:
    """Advance this worker's shared heartbeat counter from a daemon
    thread, twice per interval — proof of scheduler-level liveness that
    a chunk stuck in a kernel (or a ``SIGSTOP``-frozen process) stops
    producing, which is exactly what the parent watchdog looks for."""

    def beat() -> None:
        while True:
            claims[beat_slot] = (claims[beat_slot] + 1) % (2 ** 30)
            time.sleep(interval / 2.0)

    threading.Thread(target=beat, daemon=True,
                     name="governor-heartbeat").start()


class SpanBuffer:
    """Tracer look-alike recording raw-clock spans locally in a worker.

    Implements the subset of the :class:`repro.observability.Tracer` API
    the kernels use (``span`` / ``add_span`` / ``gauge`` / ``now``), but
    timestamps are raw ``perf_counter`` values and everything lands in
    plain lists for pickling back to the parent.
    """

    enabled = True

    def __init__(self, lane: str) -> None:
        self.lane = lane
        self.spans: List[Tuple[str, str, str, float, float, dict]] = []
        self.gauges: List[Tuple[str, float, dict]] = []

    def now(self) -> float:
        return time.perf_counter()

    def span(self, name: str, cat: str, *, lane: Optional[str] = None, **args):
        return _BufferSpan(self, name, cat, lane or self.lane, args)

    def add_span(self, name: str, cat: str, start: float, end: float, *,
                 lane: Optional[str] = None, **args) -> None:
        self.spans.append((name, cat, lane or self.lane, start, end, args))

    def gauge(self, name: str, **values: float) -> None:
        self.gauges.append((name, self.now(),
                            {k: float(v) for k, v in values.items()}))

    def drain(self):
        spans, gauges = self.spans, self.gauges
        self.spans, self.gauges = [], []
        return spans, gauges


class _BufferSpan:
    __slots__ = ("_buf", "_name", "_cat", "_lane", "_args", "_start")

    def __init__(self, buf: SpanBuffer, name: str, cat: str, lane: str,
                 args: dict) -> None:
        self._buf = buf
        self._name = name
        self._cat = cat
        self._lane = lane
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_BufferSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._buf.spans.append((
            self._name, self._cat, self._lane,
            self._start, time.perf_counter(), self._args,
        ))


#: result-segment names this worker created but has not handed off yet
_PENDING: Dict[int, str] = {}


def _cleanup_pending() -> None:
    for name in list(_PENDING.values()):
        cleanup_segments(name)
    _PENDING.clear()


def worker_main(
    worker_name: str,
    task_q,
    result_q,
    a_descs: List[SharedCSRDescriptor],
    b_descs: List[SharedCSRDescriptor],
    out_prefix: str,
    trace_enabled: bool,
    cache_max_bytes: Optional[int],
    kernel_spec: Optional[str] = None,
    faults_spec: Optional[str] = None,
    heartbeat_interval: Optional[float] = None,
    claim_slot: Optional[int] = None,
    claims=None,
) -> None:
    """Entry point of one worker process (module-level for spawn support).

    ``faults_spec`` (chaos testing) is the encoded
    :class:`~.faults.FaultInjector` spec string from the parent; falling
    back to the :data:`~.faults.FAULTS_ENV` environment variable keeps
    the hook usable under ``fork`` without any explicit plumbing.  Each
    (re)spawned worker parses its own injector, so per-process ``times``
    counters reset on respawn — exactly-once faults must use a latch.

    ``kernel_spec`` is the encoded :class:`~repro.spgemm.kernels.KernelSpec`
    from the parent — every chunk this worker runs uses it, so results
    stay identical to the serial backend under the same spec.
    """
    from ...spgemm.kernels import resolve_kernel
    from ...spgemm.twophase import spgemm_twophase
    from .faults import FaultInjector

    kernel = resolve_kernel(kernel_spec)
    injector = (FaultInjector.from_string(faults_spec) if faults_spec
                else FaultInjector.from_env())
    kill_chunk = int(os.environ.get(KILL_CHUNK_ENV, -1))
    kill_after_result = int(os.environ.get(KILL_AFTER_RESULT_ENV, -1))
    if (claims is not None and claim_slot is not None
            and heartbeat_interval is not None):
        _start_heartbeat(claims, claim_slot + len(claims) // 2,
                         heartbeat_interval)
    atexit.register(_cleanup_pending)
    attached: List[SharedCSR] = []
    try:
        try:
            row_panels = []
            for d in a_descs:
                s = SharedCSR.attach(d)
                attached.append(s)
                row_panels.append(s.matrix)
            col_panels = []
            for d in b_descs:
                s = SharedCSR.attach(d)
                attached.append(s)
                col_panels.append(s.matrix)
            caches = [RowSliceCache(p, max_bytes=cache_max_bytes)
                      for p in row_panels]
        except BaseException:
            result_q.put(("init_err", worker_name, traceback.format_exc()))
            return
        result_q.put(("ready", worker_name))

        while True:
            task = task_q.get()
            if task is None:
                break
            cid, rp, cp, t_submit_raw, attempt = task
            # claim the chunk in shared memory *first*: a plain store
            # survives any crash, whereas the queue announce below rides
            # a feeder thread that a hard kill may never let flush
            if claims is not None:
                claims[claim_slot] = cid
            # announce before any kill point: the parent requeues this
            # chunk if we die with it in flight
            result_q.put(("start", cid, worker_name))
            buf = SpanBuffer(worker_name) if trace_enabled else None
            try:
                if buf is not None and t_submit_raw is not None:
                    buf.add_span(f"queue_wait[{cid}]", "queue",
                                 t_submit_raw, buf.now(), chunk=cid)
                t0 = time.perf_counter()
                result = spgemm_twophase(
                    row_panels[rp], col_panels[cp], kernel=kernel,
                    slice_cache=caches[rp],
                    tracer=buf, trace_label=str(cid),
                    fault_hook=injector.hook_for(cid),
                )
                elapsed = time.perf_counter() - t0
                if buf is not None:
                    cache = caches[rp]
                    buf.gauge(f"slice_cache[{rp}]@{worker_name}",
                              hits=cache.hits, misses=cache.misses,
                              evictions=cache.evictions,
                              held_bytes=cache.held_bytes)

                # ship the chunk through a per-chunk shared segment sized
                # to the exact CSR (symbolic counts), not through the pipe.
                # The attempt suffix keeps a redo's segment name distinct
                # from one leaked by a crashed earlier attempt.
                seg_name = f"{out_prefix}-o{cid}.{attempt}"
                _PENDING[cid] = seg_name
                out = SharedCSR.create(result.matrix, seg_name)
                out.close()  # parent attaches via the descriptor
                if cid == kill_chunk:
                    os._exit(42)  # test hook: hard crash, segment leaked
                spans, gauges = buf.drain() if buf is not None else ((), ())
                result_q.put((
                    "ok", cid, result.stats, out.descriptor, elapsed,
                    spans, gauges, attempt,
                ))
                # handed off: the parent owns the segment now
                _PENDING.pop(cid, None)
                if cid == kill_after_result:
                    os._exit(42)  # test hook: stale death, claim still set
                if claims is not None:
                    claims[claim_slot] = -1
            except BaseException as exc:
                _cleanup_pending()
                # the exception's type name rides along so the parent can
                # route recoverable classes (device OOM -> re-split)
                # without parsing tracebacks
                result_q.put(("err", cid, traceback.format_exc(), attempt,
                              type(exc).__name__))
                if claims is not None:
                    claims[claim_slot] = -1
    except (KeyboardInterrupt, EOFError, BrokenPipeError):
        pass
    finally:
        _cleanup_pending()
        for s in attached:
            s.close()
