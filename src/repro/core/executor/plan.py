"""Dispatch planning for the chunk executor: ordering, windows, lanes.

These helpers are backend-independent — the same flops-descending order,
bounded in-flight window, and hybrid lane split (paper Algorithm 4)
drive the serial, thread, and process backends alike.  A complete plan —
lanes plus the :class:`~repro.spgemm.kernels.KernelSpec` every chunk
runs with — travels as one :class:`ChunkPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...spgemm.kernels import KernelSpec

__all__ = [
    "BUFFERS_PER_WORKER",
    "ChunkPlan",
    "default_window",
    "chunk_output_estimates",
    "filter_lanes",
    "flops_desc_order",
    "split_by_flop_ratio",
    "split_workers",
    "plan_hybrid_lanes",
]


@dataclass(frozen=True)
class ChunkPlan:
    """A complete dispatch plan for one chunk grid.

    Bundles the hybrid lane partition (``[(chunk_ids, lane_workers), ...]``
    with display names) with the :class:`KernelSpec` every chunk runs
    under, so the whole "what runs where, with which accumulator"
    decision is one value that can be passed to
    :func:`~repro.core.executor.execute_chunk_grid`, logged, or compared.
    ``lanes=None`` keeps the engine's default single-lane planning.
    """

    lanes: Optional[Tuple[Tuple[Tuple[int, ...], int], ...]] = None
    lane_names: Optional[Tuple[str, ...]] = None
    kernel: KernelSpec = field(default_factory=KernelSpec)

    @staticmethod
    def from_hybrid(
        hybrid: Sequence[Tuple[Sequence[int], int, str]],
        kernel: Optional[KernelSpec] = None,
    ) -> "ChunkPlan":
        """Wrap :func:`plan_hybrid_lanes` output into a plan."""
        return ChunkPlan(
            lanes=tuple((tuple(ids), w) for ids, w, _ in hybrid),
            lane_names=tuple(name for _, _, name in hybrid),
            kernel=kernel if kernel is not None else KernelSpec(),
        )

#: per worker, mirror the paper's two device chunk buffers: one chunk in
#: compute, one queued — so the default in-flight window is 2 x workers
BUFFERS_PER_WORKER = 2


def default_window(workers: int) -> int:
    """Default bounded in-flight window (two "device buffers" per worker)."""
    return max(1, BUFFERS_PER_WORKER * max(workers, 1))


def filter_lanes(lanes, lane_names, skip) -> Tuple[list, list]:
    """Drop the chunk ids in ``skip`` from every lane, and drop lanes
    that become empty (with their names).  Lane order, intra-lane chunk
    order, and worker counts are preserved — this is how checkpoint
    resume and backend degradation re-plan only the *remaining* work.
    """
    kept_lanes, kept_names = [], []
    for (ids, lane_workers), name in zip(lanes, lane_names):
        remaining = [cid for cid in ids if cid not in skip]
        if remaining:
            kept_lanes.append((remaining, lane_workers))
            kept_names.append(name)
    return kept_lanes, kept_names


def chunk_output_estimates(a, b, grid, estimate=None) -> List[int]:
    """Pre-execution upper bound on each chunk's host-side output bytes.

    ``nnz_out <= min(products, rows x width)``: a chunk cannot produce
    more nonzeros than its intermediate products, nor more than its
    dense extent.  The host-memory governor reserves these bounds at
    dispatch time, so in-flight + stored chunk bytes stay under budget
    even before the exact symbolic sizes are known.

    ``estimate`` (a :class:`~repro.spgemm.estimate.RowNnzEstimate`)
    replaces the bound with sampled upper-confidence chunk bytes — much
    tighter on high-compression matrices, so admission control stops
    reserving for outputs that cannot materialize.
    """
    from ..chunks import chunk_flops, csr_bytes  # deferred: chunks imports engine

    if estimate is not None:
        from ...spgemm.estimate import estimate_chunks  # deferred: cycle

        return [int(x) for x in estimate_chunks(a, b, grid, estimate).host_bytes()]

    products = chunk_flops(a, b, grid) // 2  # flops = 2 x products
    row_counts = np.diff(grid.row_bounds)
    col_widths = np.diff(grid.col_bounds)
    estimates = []
    for rp in range(grid.num_row_panels):
        rows = int(row_counts[rp])
        for cp in range(grid.num_col_panels):
            dense = rows * int(col_widths[cp])
            nnz_bound = min(int(products[rp, cp]), dense)
            estimates.append(csr_bytes(rows, nnz_bound))
    return estimates


def flops_desc_order(flops_flat: np.ndarray) -> List[int]:
    """Chunk ids by decreasing flops, ties broken by id (Alg. 4 line 14).

    Unlike :meth:`ChunkProfile.order_by_flops_desc` this needs no executed
    profile — chunk flops are computable before any kernel runs, which is
    what lets the executor dispatch heavy chunks first on a cold start.
    """
    flops_flat = np.asarray(flops_flat).ravel()
    return sorted(range(flops_flat.size), key=lambda i: (-int(flops_flat[i]), i))


def split_by_flop_ratio(
    flops_flat: np.ndarray, ratio: float
) -> Tuple[List[int], List[int]]:
    """Algorithm 4's pre-execution split: the flop-densest prefix holding at
    least ``ratio`` of total flops (the "GPU" set, in flops-descending
    order) and the remainder (the "CPU" set).

    Empty work (``total flops == 0``) has defined semantics: no chunk is
    flop-dense, so the "GPU" prefix is empty and *everything* goes to the
    "CPU" set, for any ratio — an all-zero grid never produces a spurious
    split.
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("ratio must be in [0, 1]")
    order = flops_desc_order(flops_flat)
    flops_flat = np.asarray(flops_flat).ravel()
    total = int(flops_flat.sum())
    if ratio == 0.0 or total == 0:
        return [], order
    acc = 0
    for n, cid in enumerate(order):
        acc += int(flops_flat[cid])
        if acc / total >= ratio:
            return order[: n + 1], order[n + 1 :]
    return order, []


def split_workers(workers: int, ratio: float, *, both_nonempty: bool) -> Tuple[int, int]:
    """Split the worker pool between the two hybrid lanes per the flop
    ratio, keeping at least one worker per non-empty lane.

    A single-worker pool cannot serve two concurrent lanes without 2x
    oversubscription, so ``workers == 1`` with both lanes non-empty
    returns ``(1, 0)``: the second lane gets no concurrent share and the
    caller must serialize the lanes (as :func:`plan_hybrid_lanes` does).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not both_nonempty:
        return workers, workers  # single lane gets the whole pool
    if workers == 1:
        return 1, 0
    first = int(round(workers * ratio))
    first = min(max(first, 1), workers - 1)
    return first, workers - first


def plan_hybrid_lanes(
    flops_flat: np.ndarray, workers: int, ratio: float
) -> List[Tuple[List[int], int, str]]:
    """Plan Algorithm 4's hybrid lanes: ``[(chunk_ids, workers, name), ...]``.

    The flop-densest prefix holding ``ratio`` of the flops forms the
    "gpu" lane, the remainder the "cpu" lane, and the worker pool is
    split between them.  Degenerate cases collapse to one lane: an empty
    split (all flops on one side, or an all-zero grid) hands the whole
    pool to the single non-empty lane, and a single worker *serializes*
    the two chunk sets (gpu prefix first) instead of oversubscribing one
    worker with two concurrent lanes.
    """
    gpu_ids, cpu_ids = split_by_flop_ratio(flops_flat, ratio)
    if workers == 1 and gpu_ids and cpu_ids:
        return [(list(gpu_ids) + list(cpu_ids), 1, "gpu+cpu")]
    gpu_w, cpu_w = split_workers(
        workers, ratio, both_nonempty=bool(gpu_ids and cpu_ids)
    )
    return [
        (list(ids), w, name)
        for ids, w, name in ((gpu_ids, gpu_w, "gpu"), (cpu_ids, cpu_w, "cpu"))
        if ids
    ]
