"""The pluggable chunk-execution engine: one driver, three backends.

``execute_chunk_grid`` executes every chunk of ``C = A x B`` and
profiles it.  The *driver* here owns everything backend-independent —
operand partitioning, lane planning and validation, bounded-window
semantics, profile assembly, sink serialization — and delegates the
actual chunk runs to an executor backend
(:mod:`repro.core.executor.backends`):

``serial``
    the chunks inline on the calling thread, natural (row-major) order —
    the reference path every other backend must reproduce bit-exactly.
``thread``
    a bounded-window thread pool per lane.  numpy releases the GIL in
    its heavy vectorized loops, so threads overlap partially; dispatch
    and the pure-python kernel glue still serialize on the GIL.  Lowest
    overhead — the right choice for tracing runs and small grids.
``process``
    worker *processes* that own their cores outright (no GIL).  Operand
    panels travel through shared memory once per run
    (:class:`~repro.sparse.shm.SharedCSR`); per-chunk results come back
    through per-chunk shared segments; only small descriptor tuples are
    ever pickled.

Guarantees (all backends):

* **Bit-identical output.**  Chunks touch disjoint output regions and
  each chunk's kernel is deterministic, so any backend, worker count,
  and dispatch order produces exactly the serial result.
* **Deterministic profiles.**  Chunk statistics are reassembled in
  chunk-id order regardless of completion order; only the
  ``measured_seconds`` wall-clock fields vary run to run.
* **Bounded memory.**  At most ``window`` chunks are in flight per lane,
  so peak intermediate memory — including, under the process backend,
  outstanding shared-memory result segments — stays proportional to the
  window, not the grid.

Hybrid execution (paper Algorithm 4) maps onto *lanes*: the flop-densest
chunk prefix — the "GPU" set — gets one slice of the pool, the remainder
— the "CPU" set — the other, and both lanes drain concurrently.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...device.memory import DeviceOutOfMemory
from ...observability import as_tracer
from ...sparse.formats import CSRMatrix
from ...sparse.ops import RowSliceCache, vstack
from ...sparse.partition import PanelSet, partition_columns, partition_rows
from ...spgemm.kernels import KernelSpec, resolve_kernel
from ...spgemm.twophase import TwoPhaseStats, spgemm_twophase
from ..chunks import ChunkGrid, ChunkProfile, ChunkStats, chunk_flops, csr_bytes
from ..governor import as_governor
from ..governor.integrity import crc32_matrix
from ..governor.watchdog import (
    ChunkTimeout,
    arm_deadline,
    check_deadline,
    disarm_deadline,
)
from .faults import (
    NO_RETRY,
    BackendDegradedWarning,
    BackendUnavailable,
    RetryPolicy,
    as_injector,
)
from .plan import chunk_output_estimates, default_window, filter_lanes, flops_desc_order

__all__ = ["EXECUTOR_BACKENDS", "resolve_backend_name", "execute_chunk_grid"]

#: the selectable executor backends, in escalation order
EXECUTOR_BACKENDS = ("serial", "thread", "process")

#: graceful-degradation order: if a backend cannot be established, the
#: engine falls back along this chain instead of failing the run
DEGRADATION_CHAIN = {
    "process": ("process", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}


def resolve_backend_name(
    backend: Optional[str], workers: int, has_lanes: bool
) -> str:
    """Resolve the backend choice, defaulting to the legacy semantics:
    ``workers == 1`` without explicit lanes runs serial inline, anything
    else threads."""
    if backend is None:
        return "serial" if workers == 1 and not has_lanes else "thread"
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {EXECUTOR_BACKENDS}"
        )
    return backend


def _merge_seconds(x: float, y: float) -> float:
    """Sum two stage timings, propagating the -1.0 "not measured" mark."""
    return x + y if x >= 0.0 and y >= 0.0 else -1.0


def _merge_twophase(a: TwoPhaseStats, b: TwoPhaseStats) -> TwoPhaseStats:
    """Combine the stats of two row-disjoint sub-chunks of one chunk.
    Additive in every field; ``input_nnz`` double-counts the shared B
    panel, keeping the field an upper bound rather than losing it."""
    return TwoPhaseStats(
        flops=a.flops + b.flops,
        nnz_out=a.nnz_out + b.nnz_out,
        rows_out=a.rows_out + b.rows_out,
        analysis_bytes=a.analysis_bytes + b.analysis_bytes,
        symbolic_bytes=a.symbolic_bytes + b.symbolic_bytes,
        # re-derive from the merged shape: summing the halves would
        # double-count the CSR offset array's +1 sentinel row
        output_bytes=csr_bytes(a.rows_out + b.rows_out,
                               a.nnz_out + b.nnz_out),
        symbolic_kernels=a.symbolic_kernels + b.symbolic_kernels,
        numeric_kernels=a.numeric_kernels + b.numeric_kernels,
        input_nnz=a.input_nnz + b.input_nnz,
        kernel=a.kernel,
        analysis_seconds=_merge_seconds(a.analysis_seconds,
                                        b.analysis_seconds),
        symbolic_seconds=_merge_seconds(a.symbolic_seconds,
                                        b.symbolic_seconds),
        numeric_seconds=_merge_seconds(a.numeric_seconds,
                                       b.numeric_seconds),
    )


class GridJob:
    """Backend-independent shared state of one ``execute_chunk_grid`` run:
    the partitioned operands, per-row-panel slice caches, the stats/output
    slots keyed by chunk id, and the serialized sink."""

    def __init__(
        self,
        grid: ChunkGrid,
        row_panels: PanelSet,
        col_panels: PanelSet,
        *,
        keep_outputs: bool,
        chunk_sink,
        tracer,
        retry: Optional[RetryPolicy] = None,
        faults=None,
        manifest=None,
        crash_budget: int = 0,
        governor=None,
        chunk_products: Optional[Sequence[int]] = None,
        host_estimates: Optional[Sequence[int]] = None,
        kernel: Optional[KernelSpec] = None,
        est_device_bytes: Optional[Sequence[int]] = None,
        row_ratio=None,
        chunk_events=None,
    ) -> None:
        self.grid = grid
        #: optional ``fn(chunk_id, ChunkStats)`` called after each chunk
        #: lands durably (post-sink) — the job server streams these as
        #: progress events.  Called from lane/consumer threads; must be
        #: cheap and must not raise (failures are swallowed so a slow or
        #: broken observer can never corrupt the run).
        self.chunk_events = chunk_events
        self.kernel = kernel if kernel is not None else KernelSpec()
        self.row_panels = row_panels
        self.col_panels = col_panels
        self.tracer = tracer
        self.chunk_sink = chunk_sink
        self.keep_outputs = keep_outputs
        self.retry = retry if retry is not None else NO_RETRY
        self.faults = as_injector(faults)
        self.manifest = manifest
        self.crash_budget = crash_budget
        self.governor = governor
        # per-chunk upper-bound intermediate products (device admission)
        # and output-byte estimates (host admission); None when the
        # governor does not police that axis
        self.chunk_products = chunk_products
        self.host_estimates = host_estimates
        # sampled-estimate refinements (spgemm/estimate.py): per-chunk
        # estimated device bytes gate the resplit pre-check (the UB
        # stays the fallback), and the per-row compression-ratio vector
        # feeds density hints to kernel dispatch
        self.est_device_bytes = est_device_bytes
        self.row_ratio = row_ratio
        # recovery bookkeeping: cumulative counters plus per-chunk
        # attempt numbers, shared by every lane thread
        self._fault_lock = threading.Lock()
        self.fault_counters = {"retries": 0, "respawns": 0, "degraded": 0,
                               "timeouts": 0, "resplits": 0, "stale": 0,
                               "avoided_resplits": 0}
        self._avoided_resplit_cids = set()
        # all chunks of one row panel share one A-slice cache
        self.caches = [
            RowSliceCache(row_panels[rp]) for rp in range(grid.num_row_panels)
        ]
        self.a_panel_bytes = [
            csr_bytes(row_panels[rp].n_rows, row_panels[rp].nnz)
            for rp in range(grid.num_row_panels)
        ]
        self.b_panel_bytes = [
            csr_bytes(col_panels[cp].n_rows, col_panels[cp].nnz)
            for cp in range(grid.num_col_panels)
        ]
        self.stats_by_id: List[Optional[ChunkStats]] = [None] * grid.num_chunks
        self.outputs: Optional[List[List[Optional[CSRMatrix]]]] = None
        if keep_outputs:
            self.outputs = [
                [None] * grid.num_col_panels for _ in range(grid.num_row_panels)
            ]
        self.sink_lock = threading.Lock()

    # ------------------------------------------------------------------
    # governor hooks (deadline, host admission, device fit)
    # ------------------------------------------------------------------
    @property
    def deadline_seconds(self) -> Optional[float]:
        gov = self.governor
        return None if gov is None else gov.deadline_seconds

    def _stage_hook(self, cid: int):
        """Per-chunk stage hook: fault injection composed with the
        cooperative deadline check at every kernel-stage boundary."""
        inj = self.faults.hook_for(cid)
        if self.deadline_seconds is None:
            return inj
        if inj is None:
            return lambda stage: check_deadline(cid)

        def hook(stage):
            check_deadline(cid)
            inj(stage)

        return hook

    def admit_host(self, cid: int, *, may_wait: bool) -> bool:
        """Reserve chunk ``cid``'s estimated host output bytes under the
        governor's budget; ``True`` when dispatch may proceed."""
        gov = self.governor
        if gov is None or gov.hostmem is None or self.host_estimates is None:
            return True
        return gov.hostmem.admit(cid, int(self.host_estimates[cid]),
                                 may_wait=may_wait)

    def release_host(self, cid: int) -> None:
        gov = self.governor
        if gov is not None and gov.hostmem is not None:
            gov.hostmem.release(cid)

    def needs_resplit(self, cid: int) -> bool:
        """Would this chunk's working set overflow the device pool?
        (Pre-dispatch check; such chunks go straight to the re-split
        path instead of being submitted whole.)

        With a sampled estimate attached the check uses the *estimated*
        footprint — chunks the loose flops upper bound would have
        spuriously re-split run whole (counted as ``avoided_resplits``).
        A genuinely overflowing kernel still raises
        :class:`DeviceOutOfMemory` and recovers through the same
        re-split path, so a wrong estimate costs a retry, not
        correctness."""
        gov = self.governor
        if (gov is None or gov.device_pool_bytes is None
                or self.chunk_products is None):
            return False
        rp, _cp = self.grid.panel_of(cid)
        ub_fits = gov.device_fits(self.row_panels[rp].n_rows,
                                  int(self.chunk_products[cid]))
        if self.est_device_bytes is None:
            return not ub_fits
        est_fits = gov.device_fits_bytes(int(self.est_device_bytes[cid]))
        if est_fits and not ub_fits:
            self.note_avoided_resplit(cid)
        return not est_fits

    def note_avoided_resplit(self, cid: int) -> None:
        """Record one chunk the UB pre-check would have re-split but the
        sampled estimate admitted whole (counted once per chunk)."""
        with self._fault_lock:
            if cid in self._avoided_resplit_cids:
                return
            self._avoided_resplit_cids.add(cid)
            self.fault_counters["avoided_resplits"] += 1
            total = self.fault_counters["avoided_resplits"]
        tracer = self.tracer
        if tracer.enabled:
            tracer.bump("faults", avoided_resplits=1)
            tracer.gauge("estimate", avoided_resplits=total)

    # ------------------------------------------------------------------
    # in-process chunk execution (serial + thread backends)
    # ------------------------------------------------------------------
    def density_hint(self, cid: int):
        """Estimated output nnz per row of one chunk (or ``None``).

        Scales the chunk's exact per-row product counts by the sampled
        per-row compression ratio — the dispatch hint
        :func:`~repro.spgemm.twophase.spgemm_twophase` uses to bin rows
        by estimated density instead of the upper bound.  In-process
        backends only; it never crosses to process workers (pure perf
        hint, results are bit-identical either way)."""
        if self.row_ratio is None:
            return None
        from ..memcheck import panel_row_products  # deferred: import cost

        rp, cp = self.grid.panel_of(cid)
        products = panel_row_products(self.row_panels[rp], self.col_panels[cp])
        lo = int(self.grid.row_bounds[rp])
        ratio = np.asarray(self.row_ratio)[lo:lo + products.size]
        hint = np.ceil(ratio * products).astype(np.int64)
        return np.minimum(hint, products)

    def run_chunk_local(
        self, cid: int
    ) -> Tuple[int, TwoPhaseStats, CSRMatrix, float]:
        rp, cp = self.grid.panel_of(cid)
        tracer = self.tracer
        deadline = self.deadline_seconds
        t0 = time.perf_counter()
        if deadline is not None:
            arm_deadline(cid, deadline)
        try:
            result = spgemm_twophase(
                self.row_panels[rp], self.col_panels[cp],
                kernel=self.kernel,
                slice_cache=self.caches[rp], tracer=tracer,
                trace_label=str(cid),
                fault_hook=self._stage_hook(cid),
                density_hint=self.density_hint(cid),
            )
        finally:
            if deadline is not None:
                disarm_deadline(cid)
        elapsed = time.perf_counter() - t0
        if tracer.enabled:
            # cumulative per-row-panel slice-cache behaviour, sampled at
            # each chunk completion (hit/miss/eviction counters + bytes)
            cache = self.caches[rp]
            tracer.gauge(f"slice_cache[{rp}]",
                         hits=cache.hits, misses=cache.misses,
                         evictions=cache.evictions,
                         held_bytes=cache.held_bytes)
        return cid, result.stats, result.matrix, elapsed

    # ------------------------------------------------------------------
    # completion (every backend funnels through here)
    # ------------------------------------------------------------------
    def on_done(self, cid: int, st: TwoPhaseStats, matrix: CSRMatrix,
                elapsed: float) -> None:
        rp, cp = self.grid.panel_of(cid)
        stats = ChunkStats(
            chunk_id=cid,
            row_panel=rp,
            col_panel=cp,
            rows=self.row_panels[rp].n_rows,
            width=self.col_panels[cp].n_cols,
            flops=st.flops,
            a_panel_bytes=self.a_panel_bytes[rp],
            b_panel_bytes=self.b_panel_bytes[cp],
            input_nnz=st.input_nnz,
            nnz_out=st.nnz_out,
            output_bytes=st.output_bytes,
            analysis_bytes=st.analysis_bytes,
            symbolic_bytes=st.symbolic_bytes,
            symbolic_kernels=st.symbolic_kernels,
            numeric_kernels=st.numeric_kernels,
            measured_seconds=elapsed,
            kernel=st.kernel,
            analysis_seconds=st.analysis_seconds,
            symbolic_seconds=st.symbolic_seconds,
            numeric_seconds=st.numeric_seconds,
        )
        if self.faults.enabled:
            self.faults.fire("sink", cid)
        if (self.chunk_sink is not None or self.keep_outputs
                or self.manifest is not None):
            with self.tracer.span(f"sink[{cid}]", "sink", chunk=cid,
                                  bytes=st.output_bytes), self.sink_lock:
                if self.chunk_sink is not None:
                    self.chunk_sink(rp, cp, matrix)
                if self.keep_outputs:
                    self.outputs[rp][cp] = matrix
                # record completion only after the chunk is durably in
                # the sink — the manifest must never point at data that
                # was not written.  The CRC stamped here is what --resume
                # verifies the checkpointed chunk against.
                if self.manifest is not None:
                    self.manifest.mark_done(stats, crc32=crc32_matrix(matrix))
        # the stats slot doubles as the chunk's "completed" flag (for the
        # degradation re-plan and the final missing check), so it too is
        # only filled after a successful sink — a sink-stage failure
        # leaves the chunk marked as remaining work
        self.stats_by_id[cid] = stats
        if self.chunk_events is not None:
            try:
                self.chunk_events(cid, stats)
            except Exception:
                pass

    # ------------------------------------------------------------------
    # fault tolerance (retry decisions + recovery telemetry)
    # ------------------------------------------------------------------
    def next_retry(self, cid: int, attempt: int,
                   exc: BaseException) -> Optional[float]:
        """Decide whether attempt ``attempt`` of chunk ``cid`` failing
        with ``exc`` should be retried.  Returns the backoff delay to
        wait before the next attempt, or ``None`` to propagate — and
        records the retry as a span + counter bump when it happens."""
        if not self.retry.should_retry(exc, attempt):
            return None
        delay = self.retry.delay_for(attempt, salt=cid)
        with self._fault_lock:
            self.fault_counters["retries"] += 1
        tracer = self.tracer
        if tracer.enabled:
            now = tracer.now()
            # the span covers the backoff window before the next attempt
            tracer.add_span(f"retry[{cid}]", "retry", now, now + delay,
                            chunk=cid, attempt=attempt,
                            error=type(exc).__name__)
            tracer.bump("faults", retries=1)
        return delay

    def run_chunk_with_retry(self, cid: int) -> None:
        """Run one chunk to completion (kernel + sink), retrying failed
        attempts per the policy — the in-process (serial/thread
        single-worker) execution path.

        Host-memory admission brackets the whole chunk lifetime; a
        device-memory overflow (predicted or raised) diverts the chunk
        through the adaptive re-split path instead of a plain retry."""
        self.admit_host(cid, may_wait=True)
        try:
            attempt = 1
            while True:
                try:
                    if self.needs_resplit(cid):
                        self.on_done(*self.run_chunk_resplit(cid))
                    else:
                        self.on_done(*self.run_chunk_local(cid))
                    return
                except DeviceOutOfMemory:
                    # the kernel itself overflowed the pool: recover by
                    # re-splitting rather than re-running the same shape
                    self.on_done(*self.run_chunk_resplit(cid))
                    return
                except BaseException as exc:
                    if isinstance(exc, ChunkTimeout):
                        self.note_timeout(cid, attempt)
                    delay = self.next_retry(cid, attempt, exc)
                    if delay is None:
                        raise
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
        finally:
            self.release_host(cid)

    def note_respawn(self, lane: str, worker: str, cid: Optional[int],
                     exitcode, kind: str = "crash") -> None:
        """Record one self-healed worker replacement.  ``kind`` is
        ``"crash"`` (hard death, chunk requeued), ``"timeout"`` (watchdog
        kill of a hung worker) or ``"stale"`` (death after its chunk was
        already delivered/checkpointed — nothing to requeue)."""
        with self._fault_lock:
            self.fault_counters["respawns"] += 1
            if kind == "stale":
                self.fault_counters["stale"] += 1
        tracer = self.tracer
        if tracer.enabled:
            now = tracer.now()
            tracer.add_span(f"respawn[{worker}]", "respawn", now, now,
                            lane=lane, worker=worker, kind=kind,
                            chunk=-1 if cid is None else cid,
                            exitcode=-1 if exitcode is None else exitcode)
            tracer.bump("faults", respawns=1)
            if kind == "stale":
                tracer.bump("faults", stale=1)

    def note_timeout(self, cid: int, attempt: int) -> None:
        """Record one chunk deadline expiry (cooperative or watchdog)."""
        with self._fault_lock:
            self.fault_counters["timeouts"] += 1
        tracer = self.tracer
        if tracer.enabled:
            now = tracer.now()
            tracer.add_span(f"timeout[{cid}]", "timeout", now, now,
                            chunk=cid, attempt=attempt)
            tracer.bump("faults", timeouts=1)

    def note_resplit(self, cid: int, depth: int, rows: int) -> None:
        """Record one device-OOM row-panel halving."""
        with self._fault_lock:
            self.fault_counters["resplits"] += 1
        tracer = self.tracer
        if tracer.enabled:
            now = tracer.now()
            tracer.add_span(f"resplit[{cid}]", "resplit", now, now,
                            chunk=cid, depth=depth, rows=rows)
            tracer.bump("faults", resplits=1)

    # ------------------------------------------------------------------
    # device-OOM recovery: adaptive row-panel re-splitting
    # ------------------------------------------------------------------
    def _sub_fits(self, a_sub: CSRMatrix, b_panel: CSRMatrix) -> bool:
        gov = self.governor
        if gov is None or gov.device_pool_bytes is None:
            return True
        from ..memcheck import panel_row_products

        products = int(panel_row_products(a_sub, b_panel).sum())
        return gov.device_fits(a_sub.n_rows, products)

    def _run_subchunk(self, cid: int, a_sub: CSRMatrix,
                      b_panel: CSRMatrix, depth: int):
        """Run one sub-panel, halving further while the device bound (or
        the kernel itself) says it still does not fit."""
        gov = self.governor
        max_depth = gov.max_resplit_depth if gov is not None else 1
        can_split = a_sub.n_rows > 1 and depth < max_depth
        if can_split and not self._sub_fits(a_sub, b_panel):
            return self._halve(cid, a_sub, b_panel, depth)
        deadline = self.deadline_seconds
        hook = (lambda stage: check_deadline(cid)) if deadline else None
        try:
            result = spgemm_twophase(
                a_sub, b_panel, kernel=self.kernel, tracer=self.tracer,
                trace_label=f"{cid}.s{depth}", fault_hook=hook,
            )
        except DeviceOutOfMemory:
            if not can_split:
                raise
            return self._halve(cid, a_sub, b_panel, depth)
        return result.matrix, result.stats

    def _halve(self, cid: int, a_sub: CSRMatrix, b_panel: CSRMatrix,
               depth: int):
        self.note_resplit(cid, depth, a_sub.n_rows)
        mid = a_sub.n_rows // 2
        top_m, top_s = self._run_subchunk(
            cid, a_sub.row_slice(0, mid), b_panel, depth + 1)
        bot_m, bot_s = self._run_subchunk(
            cid, a_sub.row_slice(mid, a_sub.n_rows), b_panel, depth + 1)
        return vstack([top_m, bot_m]), _merge_twophase(top_s, bot_s)

    def run_chunk_resplit(
        self, cid: int
    ) -> Tuple[int, TwoPhaseStats, CSRMatrix, float]:
        """Recompute chunk ``cid`` as recursively halved row sub-panels
        — the device-OOM recovery path.  Row slices partition the panel,
        each sub-product is deterministic, and :func:`vstack` restores
        row order, so the assembled chunk is bit-identical to the
        unsplit computation."""
        rp, cp = self.grid.panel_of(cid)
        a_panel = self.row_panels[rp]
        b_panel = self.col_panels[cp]
        if a_panel.n_rows <= 1:
            raise DeviceOutOfMemory(
                f"chunk {cid}: a single-row panel still exceeds the "
                "device pool — cannot re-split further"
            )
        deadline = self.deadline_seconds
        t0 = time.perf_counter()
        if deadline is not None:
            arm_deadline(cid, deadline)
        try:
            matrix, st = self._halve(cid, a_panel, b_panel, depth=1)
        finally:
            if deadline is not None:
                disarm_deadline(cid)
        return cid, st, matrix, time.perf_counter() - t0

    def note_degrade(self, from_backend: str, to_backend: str,
                     reason: str) -> None:
        """Record one graceful backend degradation step."""
        with self._fault_lock:
            self.fault_counters["degraded"] += 1
        tracer = self.tracer
        if tracer.enabled:
            now = tracer.now()
            tracer.add_span(f"degrade[{from_backend}->{to_backend}]",
                            "degrade", now, now, reason=reason)
            tracer.bump("faults", degraded=1)

    def note_resume(self, skipped: int, remaining: int) -> None:
        """Record how much work a checkpoint resume skipped."""
        tracer = self.tracer
        if tracer.enabled:
            now = tracer.now()
            tracer.add_span("resume", "resume", now, now,
                            skipped=skipped, remaining=remaining)
            tracer.gauge("resume", skipped=skipped, remaining=remaining)


def run_lanes_concurrently(
    runners: Sequence[Callable[[], None]],
    names: Sequence[str],
) -> None:
    """Drive one runner per lane; lanes > 1 get their own threads and the
    first lane error propagates to the caller."""
    if len(runners) == 1:
        runners[0]()
        return
    errors: List[BaseException] = []

    def lane_main(runner):
        try:
            runner()
        except BaseException as exc:  # propagate to the caller thread
            errors.append(exc)

    threads = [
        # inline lane spans land on this thread-name track
        threading.Thread(target=lane_main, args=(r,), name=names[i])
        for i, r in enumerate(runners)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def execute_chunk_grid(
    a: CSRMatrix,
    b: CSRMatrix,
    grid: ChunkGrid,
    *,
    workers: int = 1,
    window: Optional[int] = None,
    keep_outputs: bool = False,
    chunk_sink=None,
    name: str = "",
    lanes: Optional[Sequence[Tuple[Sequence[int], int]]] = None,
    lane_names: Optional[Sequence[str]] = None,
    tracer=None,
    backend: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    crash_budget: int = 0,
    faults=None,
    manifest=None,
    resume_stats: Optional[Mapping[int, ChunkStats]] = None,
    degrade: bool = True,
    governor=None,
    kernel=None,
    plan=None,
    estimate=None,
    chunk_events=None,
    col_panels: Optional[PanelSet] = None,
) -> Tuple[ChunkProfile, Optional[List[List[CSRMatrix]]]]:
    """Execute every chunk of ``C = A x B`` and profile it, concurrently.

    Parameters
    ----------
    workers:
        Worker count.  Under the default backend resolution, ``1`` runs
        the chunks inline in natural (row-major) order — the legacy
        serial behaviour; ``> 1`` dispatches them flops-descending
        through the thread backend.
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, or ``None`` for the
        legacy resolution above.  The process backend runs chunk kernels
        in worker processes that attach the operand panels through
        shared memory (see :mod:`repro.core.executor.backends`); results
        are bit-identical across all backends.
    window:
        Max chunks in flight per lane (default ``2 x workers``, the
        two-buffer analog).  Bounds peak memory held by unconsumed chunk
        outputs — under the process backend this also caps the
        outstanding shared-memory result segments.  Must be >= 1 when
        given: ``0`` would admit nothing (and silently falling back to
        the default hid exactly that), and a negative window would spin
        the dispatch loop forever.
    keep_outputs / chunk_sink:
        As in :func:`repro.core.chunks.profile_chunks`; sink calls are
        serialized under a lock, in completion order.
    lanes:
        Optional explicit ``[(chunk_ids, lane_workers), ...]`` partition of
        the grid (the hybrid split).  Lanes drain concurrently, each with
        its own bounded window and >= 1 workers; every chunk id must
        appear exactly once.  ``lane_names`` labels the lanes in traces
        (default ``lane0``, ``lane1``, ...).
    tracer:
        A :class:`repro.observability.Tracer` recording the full chunk
        lifecycle — queue wait, analysis/symbolic/numeric phases, sink
        writes — plus lane queue-depth/occupancy and slice-cache
        hit/miss/eviction gauges.  Under the process backend workers
        record spans locally and ship them back in the result
        descriptors for merging, so one trace still covers the whole
        pipeline.  Default is the no-op null tracer; tracing never
        changes results (bit-identical on or off).
    retry:
        A :class:`~repro.core.executor.faults.RetryPolicy`.  A chunk
        attempt that fails with a retryable exception re-enters the
        dispatch queue after the policy's backoff delay instead of
        aborting the run; ``None`` keeps the legacy no-retry behaviour.
        Retries never change results — chunks are deterministic, so a
        re-run produces the identical matrix.
    crash_budget:
        Process backend only: how many hard worker deaths the run
        absorbs by requeueing the in-flight chunk and respawning the
        worker before giving up with ``WorkerCrashed`` (default 0 — any
        crash aborts, the legacy behaviour).
    faults:
        A :class:`~repro.core.executor.faults.FaultInjector` (or spec
        string) for chaos testing; ``None`` reads the ``REPRO_FAULTS``
        environment variable, so fault injection also reaches worker
        processes.
    manifest:
        A :class:`~repro.core.spill.RunManifest` recording each chunk's
        completion (after its sink write) for checkpoint/resume.
    resume_stats:
        ``{chunk_id: ChunkStats}`` of already-completed chunks (from a
        manifest).  Those chunks are skipped — their recorded stats are
        spliced into the profile — and only the remainder executes.
    degrade:
        When the selected backend cannot be established (e.g. the
        process pool fails to spawn), fall back process -> thread ->
        serial with a :class:`BackendDegradedWarning` instead of
        raising (default).  ``False`` propagates the failure.
    governor:
        A :class:`~repro.core.governor.Governor` (or
        :class:`~repro.core.governor.GovernorConfig`) policing the run:
        per-chunk deadlines + worker heartbeats (hung chunks raise
        :class:`~repro.core.governor.ChunkTimeout`, retryable), a
        host-memory byte budget gating dispatch (with spill-under-
        pressure when the sink store supports it), and a device-pool
        bound that re-splits oversized chunks instead of submitting
        them.  ``None`` (default) disables all governing — the legacy
        behaviour.  Recovery never changes results: re-split chunks
        reassemble bit-identically via row ``vstack``.
    kernel:
        Accumulator family every chunk runs with — ``None`` (auto), a
        wire string (``"esc"``), or a
        :class:`~repro.spgemm.kernels.KernelSpec`.  Threaded through
        every backend including process workers; results are identical
        across kernels (see :mod:`repro.spgemm.kernels`).
    plan:
        A :class:`~repro.core.executor.plan.ChunkPlan` bundling lanes,
        lane names, and the kernel spec.  Mutually exclusive with
        passing ``lanes`` / ``lane_names`` / ``kernel`` separately.
    estimate:
        A :class:`~repro.spgemm.estimate.RowNnzEstimate` for ``A x B``.
        When given, the governor's host admission and device-OOM
        pre-check consume *estimated* chunk bytes (upper bound as
        fallback ceiling; spurious UB-only resplits are counted as
        ``avoided_resplits``), and in-process backends pass per-row
        density hints to kernel dispatch.  Purely a sizing/dispatch
        refinement — results are bit-identical with or without it.
    chunk_events:
        Optional ``fn(chunk_id, ChunkStats)`` progress callback fired
        after each chunk lands durably (post-sink, in completion order
        per lane).  Runs on lane/consumer threads; exceptions it raises
        are swallowed.  The job server uses this to stream per-chunk
        completion events to callers.
    col_panels:
        Optional pre-partitioned column panels of ``B`` (a
        :class:`~repro.sparse.partition.PanelSet` from
        :func:`~repro.sparse.partition.partition_columns` with the
        grid's exact ``col_bounds``).  Column partitioning is the
        expensive direction; a sharded run slicing ``A`` across N
        concurrent sub-runs over the *same* ``B`` partitions it once
        and hands every shard the same read-only panels — the
        in-process analog of SUMMA's B broadcast (see
        :mod:`repro.distributed.shard`).  Must describe this exact
        ``b``; the bounds are validated, the content is the caller's
        contract.  ``None`` (default) partitions here.

    This function is re-entrant: all per-run state lives on the
    :class:`GridJob` (a fresh tracer/governor pair per call), cooperative
    deadlines are registered per executing thread, and shared-memory
    prefixes are swept per registering process — so an event loop may
    run many grids concurrently through one process (see
    :mod:`repro.serve`).

    Returns ``(profile, outputs_or_None)``.  The profile's chunks are in
    chunk-id order with per-chunk measured wall times filled in, and the
    profile records the end-to-end measured wall time of the whole grid.
    """
    from .backends import make_backend  # deferred: backends import engine

    tracer = as_tracer(tracer)
    if plan is not None:
        if lanes is not None or lane_names is not None or kernel is not None:
            raise ValueError(
                "pass either plan= or lanes/lane_names/kernel, not both"
            )
        lanes = None if plan.lanes is None else [
            (list(ids), w) for ids, w in plan.lanes
        ]
        lane_names = None if plan.lane_names is None else list(plan.lane_names)
        kernel_spec = plan.kernel
    else:
        kernel_spec = resolve_kernel(kernel)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if window is not None and window < 1:
        raise ValueError(
            f"window must be >= 1 (or None for the default), got {window}"
        )
    backend_name = resolve_backend_name(backend, workers, lanes is not None)
    if backend_name == "serial" and workers > 1:
        raise ValueError(
            "the serial backend runs exactly one worker; use "
            "backend='thread' or 'process' for workers > 1"
        )
    row_panels: PanelSet = partition_rows(a, grid.num_row_panels)
    if col_panels is None:
        col_panels = partition_columns(b, grid.num_col_panels)
    if not np.array_equal(row_panels.boundaries, grid.row_bounds) or not np.array_equal(
        col_panels.boundaries, grid.col_bounds
    ):
        raise ValueError("grid boundaries disagree with panel partitioning")

    num_chunks = grid.num_chunks
    if lanes is None:
        if backend_name == "serial":
            lanes = [(list(range(num_chunks)), 1)]
        elif workers <= 1 and backend_name == "thread":
            lanes = [(list(range(num_chunks)), 1)]
        else:
            order = flops_desc_order(chunk_flops(a, b, grid))
            lanes = [(order, workers)]
    else:
        seen = sorted(cid for ids, _ in lanes for cid in ids)
        if seen != list(range(num_chunks)):
            raise ValueError("lanes must cover every chunk id exactly once")
        bad = [w for _, w in lanes if w < 1]
        if bad:
            raise ValueError(
                f"every lane needs >= 1 workers, got {bad}; a zero-worker "
                "lane means the caller should have serialized the lanes "
                "(see plan_hybrid_lanes)"
            )
    if lane_names is None:
        lane_names = [f"lane{i}" for i in range(len(lanes))]
    elif len(lane_names) != len(lanes):
        raise ValueError("lane_names must match lanes in length")

    gov = as_governor(governor)
    chunk_products = None
    host_estimates = None
    est_device_bytes = None
    row_ratio = None
    if estimate is not None:
        row_ratio = estimate.ratio()
    if gov is not None:
        gov.bind_tracer(tracer)
        chunk_est = None
        if estimate is not None and (
            gov.device_pool_bytes is not None or gov.hostmem is not None
        ):
            from ...spgemm.estimate import estimate_chunks  # deferred: cycle

            chunk_est = estimate_chunks(a, b, grid, estimate)
        if gov.device_pool_bytes is not None:
            # flops = 2 x products (chunk_flops convention)
            chunk_products = (chunk_flops(a, b, grid).reshape(-1) // 2)
            if chunk_est is not None:
                est_device_bytes = chunk_est.device_bytes()
        if gov.hostmem is not None:
            host_estimates = (chunk_est.host_bytes() if chunk_est is not None
                              else chunk_output_estimates(a, b, grid))

    job = GridJob(
        grid, row_panels, col_panels,
        keep_outputs=keep_outputs, chunk_sink=chunk_sink, tracer=tracer,
        retry=retry, faults=faults, manifest=manifest,
        crash_budget=crash_budget, governor=gov,
        chunk_products=chunk_products, host_estimates=host_estimates,
        kernel=kernel_spec,
        est_device_bytes=est_device_bytes, row_ratio=row_ratio,
        chunk_events=chunk_events,
    )

    # checkpoint resume: splice the recorded stats of already-completed
    # chunks into the job and execute only the remainder
    if resume_stats:
        for cid, stats in resume_stats.items():
            if not 0 <= cid < num_chunks:
                raise ValueError(
                    f"resume stats reference chunk {cid} outside the "
                    f"{num_chunks}-chunk grid"
                )
            if (stats.row_panel, stats.col_panel) != grid.panel_of(cid):
                raise ValueError(
                    f"resume stats for chunk {cid} disagree with the grid "
                    "layout — wrong manifest for this run?"
                )
            job.stats_by_id[cid] = stats
        lanes, lane_names = filter_lanes(lanes, lane_names, set(resume_stats))
        job.note_resume(skipped=len(resume_stats),
                        remaining=num_chunks - len(resume_stats))

    def lane_window(lane_workers: int) -> int:
        return default_window(lane_workers) if window is None else window

    chain = DEGRADATION_CHAIN[backend_name] if degrade else (backend_name,)
    wall_start = time.perf_counter()
    for step, candidate in enumerate(chain):
        # re-plan only the not-yet-completed chunks: after a partial
        # degradation (some lanes ran before the failing backend gave
        # up) the fallback must not re-run finished work
        done = {i for i, s in enumerate(job.stats_by_id) if s is not None}
        run_lanes, run_names = filter_lanes(lanes, lane_names, done)
        if not run_lanes:
            break
        try:
            make_backend(candidate).execute(job, run_lanes, run_names,
                                            lane_window)
            break
        except BackendUnavailable as exc:
            if step + 1 >= len(chain):
                raise
            job.note_degrade(candidate, chain[step + 1], str(exc))
            warnings.warn(
                f"executor backend {candidate!r} unavailable "
                f"({exc.reason}); degrading to {chain[step + 1]!r}",
                BackendDegradedWarning,
                stacklevel=2,
            )
    wall = time.perf_counter() - wall_start

    missing = [i for i, s in enumerate(job.stats_by_id) if s is None]
    if missing:
        raise RuntimeError(f"chunks never completed: {missing[:4]}...")
    profile = ChunkProfile(
        grid=grid,
        chunks=tuple(job.stats_by_id),
        name=name,
        measured_wall_seconds=wall,
    )
    return profile, job.outputs
