"""Fault tolerance for the chunk executor: retries, fault injection.

The out-of-core formulation (paper Algorithm 3) makes every output chunk
an independent, re-runnable unit of work — exactly the granularity at
which a long run should recover from failures.  This module holds the
backend-independent pieces:

:class:`RetryPolicy`
    per-chunk retry with exponential backoff and deterministic jitter.
    Every backend consults the policy when a chunk attempt fails: a
    retryable failure re-enters the dispatch queue (after the backoff
    delay) instead of killing the run.
:class:`FaultInjector` / :class:`FaultSpec`
    the chaos-testing hook: declaratively inject ``raise`` / ``delay`` /
    ``kill`` faults at any pipeline stage (``analysis`` / ``symbolic`` /
    ``numeric`` / ``sink``), optionally scoped to one chunk, limited to
    N firings, or latched through a file so a fault fires exactly once
    across *processes* (a respawned worker must not re-die forever).
    Specs have a string encoding so they travel to worker processes via
    the :data:`FAULTS_ENV` environment variable or a pool argument.

Exceptions and warnings:

:class:`InjectedFault`
    raised by ``raise``-action fault specs (retryable by default).
:class:`ChunkExecutionError`
    parent-side wrapper for a chunk that failed in a worker process —
    carries the chunk id, the attempt number, and the remote traceback.
:class:`BackendUnavailable`
    raised by a backend that cannot *establish* itself (e.g. the process
    pool fails to spawn or attach).  The engine reacts by degrading
    process -> thread -> serial with a :class:`BackendDegradedWarning`
    instead of failing the run.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple, Union

__all__ = [
    "FAULTS_ENV",
    "FAULT_STAGES",
    "RetryPolicy",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    "ChunkExecutionError",
    "BackendUnavailable",
    "BackendDegradedWarning",
    "default_retryable",
]

#: environment variable holding an encoded fault-spec list; worker
#: processes parse it at startup so injected faults survive respawns
FAULTS_ENV = "REPRO_FAULTS"

#: the pipeline stages a fault can be injected at.  The first three are
#: the kernel phases of :func:`repro.spgemm.twophase.spgemm_twophase`;
#: ``sink`` fires in the parent just before the chunk sink/store write.
FAULT_STAGES = ("analysis", "symbolic", "numeric", "sink")

#: actions a fault spec can perform when it fires.  ``raise`` / ``delay``
#: / ``kill`` are PR 4's crash-coverage set; ``hang`` (stall until the
#: watchdog cancels, capped at ``delay`` seconds), ``oom`` (raise
#: :class:`~repro.device.memory.DeviceOutOfMemory`) and ``corrupt``
#: (raise :class:`~repro.core.governor.ChunkCorruption`) exercise the
#: governor's recovery paths.
FAULT_ACTIONS = ("raise", "delay", "kill", "hang", "oom", "corrupt")


class InjectedFault(RuntimeError):
    """A fault deliberately injected by a :class:`FaultInjector`."""


class ChunkExecutionError(RuntimeError):
    """A chunk attempt failed (possibly in a worker process).

    Carries enough context for the retry policy and for error reports:
    the chunk id, which attempt failed, and — for process-backend
    failures — the worker-side traceback text.
    """

    def __init__(self, chunk_id: int, attempt: int,
                 detail: str = "", stage: Optional[str] = None) -> None:
        msg = f"chunk {chunk_id} failed (attempt {attempt})"
        if stage:
            msg += f" at stage {stage!r}"
        if detail:
            msg += f":\n{detail}"
        super().__init__(msg)
        self.chunk_id = chunk_id
        self.attempt = attempt
        self.stage = stage
        self.detail = detail


class BackendUnavailable(RuntimeError):
    """An executor backend could not be established (no chunk ran).

    Distinct from mid-run failures: the engine only degrades to the next
    backend when the current one signals that it never got going (or can
    report exactly which chunks still need to run)."""

    def __init__(self, backend: str, reason: str) -> None:
        super().__init__(f"backend {backend!r} unavailable: {reason}")
        self.backend = backend
        self.reason = reason


class BackendDegradedWarning(RuntimeWarning):
    """Emitted when the engine falls back to a slower executor backend."""


def default_retryable(exc: BaseException) -> bool:
    """The default retry predicate: any ``Exception`` is retryable.

    ``BaseException``-only failures (``KeyboardInterrupt``,
    ``SystemExit``) never are — an interrupt must abort the run so the
    checkpoint manifest can be resumed instead."""
    return isinstance(exc, Exception)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-chunk retry with exponential backoff and deterministic jitter.

    ``max_attempts`` counts *total* attempts per chunk (1 = no retry, the
    default — existing behaviour).  Delays grow as ``base_delay *
    backoff**(attempt-1)``, capped at ``max_delay``, then stretched by up
    to ``jitter`` (a fraction) using a hash of ``(attempt, chunk id)`` —
    deterministic, so failure handling is reproducible, yet different
    chunks desynchronize instead of retrying in lockstep.

    ``retryable`` classifies failures: it receives the exception of a
    failed attempt and returns whether another attempt is worthwhile.
    The default retries any ``Exception`` (transient kernel faults,
    injected chaos, worker-side errors) but never ``KeyboardInterrupt``
    / ``SystemExit``.
    """

    max_attempts: int = 1
    base_delay: float = 0.05
    max_delay: float = 2.0
    backoff: float = 2.0
    jitter: float = 0.5
    retryable: Callable[[BaseException], bool] = field(default=default_retryable)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if not 0.0 <= self.jitter:
            raise ValueError("jitter must be >= 0")

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether attempt ``attempt`` failing with ``exc`` warrants another."""
        return attempt < self.max_attempts and bool(self.retryable(exc))

    def delay_for(self, attempt: int, salt: int = 0) -> float:
        """Backoff delay (seconds) before attempt ``attempt + 1``."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        delay = min(self.base_delay * self.backoff ** (attempt - 1),
                    self.max_delay)
        # deterministic jitter: a hash of (attempt, salt) -> [0, 1)
        mix = (attempt * 0x9E3779B1 + (salt + 1) * 0x85EBCA77) & 0xFFFFFFFF
        return delay * (1.0 + self.jitter * (mix / 2 ** 32))


#: the no-retry policy every entry point defaults to
NO_RETRY = RetryPolicy(max_attempts=1)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: *where* it fires and *what* it does.

    ``stage``
        one of :data:`FAULT_STAGES`.
    ``action``
        ``raise`` (an :class:`InjectedFault`), ``delay`` (sleep
        ``delay`` seconds), ``kill`` (``os._exit(42)`` — a hard worker
        crash; only meaningful under the process backend), ``hang``
        (stall until the watchdog cancels, ``delay`` as a failsafe
        cap), ``oom`` (a ``DeviceOutOfMemory`` — triggers re-split
        recovery), or ``corrupt`` (a ``ChunkCorruption`` — triggers
        recompute).
    ``chunk``
        restrict to one chunk id (``None`` = any chunk).
    ``times``
        firings before the spec goes dormant (``-1`` = unlimited).
        Counted per *process* — use ``latch`` for exactly-once across
        processes.
    ``latch``
        path of a latch file: the spec fires only if it can *create*
        the file (``O_EXCL``), i.e. exactly once machine-wide.  This is
        how a kill fault avoids re-killing every respawned worker.
    """

    stage: str
    action: str
    chunk: Optional[int] = None
    times: int = 1
    delay: float = 0.05
    latch: Optional[str] = None

    def __post_init__(self) -> None:
        if self.stage not in FAULT_STAGES:
            raise ValueError(
                f"unknown fault stage {self.stage!r}; choose from {FAULT_STAGES}"
            )
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; choose from {FAULT_ACTIONS}"
            )
        if self.times == 0 or self.times < -1:
            raise ValueError("times must be >= 1 or -1 (unlimited)")

    # ------------------------------------------------------------------
    # string encoding — the cross-process transport
    # ------------------------------------------------------------------
    def encode(self) -> str:
        parts = [self.stage, self.action]
        if self.chunk is not None:
            parts.append(f"chunk={self.chunk}")
        if self.times != 1:
            parts.append(f"times={self.times}")
        if self.delay != 0.05:
            parts.append(f"delay={self.delay}")
        if self.latch is not None:
            parts.append(f"latch={self.latch}")
        return ":".join(parts)

    @classmethod
    def decode(cls, text: str) -> "FaultSpec":
        parts = text.strip().split(":")
        if len(parts) < 2:
            raise ValueError(f"malformed fault spec {text!r}")
        kwargs = {}
        for part in parts[2:]:
            key, _, value = part.partition("=")
            if key == "chunk":
                kwargs["chunk"] = int(value)
            elif key == "times":
                kwargs["times"] = int(value)
            elif key == "delay":
                kwargs["delay"] = float(value)
            elif key == "latch":
                kwargs["latch"] = value
            else:
                raise ValueError(f"unknown fault spec field {key!r} in {text!r}")
        return cls(stage=parts[0], action=parts[1], **kwargs)


def _acquire_latch(path: str) -> bool:
    """Atomically create the latch file; False if it already exists."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


class _SpecState:
    __slots__ = ("spec", "remaining")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.remaining = spec.times  # -1 = unlimited


class FaultInjector:
    """Fires declared :class:`FaultSpec` faults at pipeline stage hooks.

    Thread-safe: one injector is shared by every lane thread of a run.
    Each worker *process* builds its own injector from the encoded spec
    string, so per-process ``times`` counters reset on respawn — specs
    that must fire exactly once across crashes use a ``latch`` file.

    An injector with no specs is inert; ``fire`` is then a no-op cheap
    enough to leave in the hot path.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self._states = [_SpecState(s) for s in specs]
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: Optional[str]) -> "FaultInjector":
        """Parse a ``;``-separated list of encoded fault specs."""
        if not text:
            return cls()
        return cls([FaultSpec.decode(p) for p in text.split(";") if p.strip()])

    @classmethod
    def from_env(cls, env: Optional[dict] = None) -> "FaultInjector":
        """The injector declared in :data:`FAULTS_ENV` (inert if unset)."""
        env = os.environ if env is None else env
        return cls.from_string(env.get(FAULTS_ENV))

    def encode(self) -> str:
        """The spec string (ship to worker processes / the environment)."""
        return ";".join(st.spec.encode() for st in self._states)

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(self._states)

    @property
    def specs(self) -> Tuple[FaultSpec, ...]:
        return tuple(st.spec for st in self._states)

    def fire(self, stage: str, chunk_id: int) -> None:
        """Fire every armed spec matching ``(stage, chunk_id)``.

        ``delay`` actions sleep; ``raise`` actions raise
        :class:`InjectedFault`; ``kill`` actions hard-exit the process.
        """
        if not self._states:
            return
        for state in self._states:
            spec = state.spec
            if spec.stage != stage:
                continue
            if spec.chunk is not None and spec.chunk != chunk_id:
                continue
            with self._lock:
                if state.remaining == 0:
                    continue
                if spec.latch is not None and not _acquire_latch(spec.latch):
                    continue
                if state.remaining > 0:
                    state.remaining -= 1
            if spec.action == "delay":
                time.sleep(spec.delay)
            elif spec.action == "kill":
                os._exit(42)  # simulate a hard worker crash
            elif spec.action == "hang":
                # stall until the watchdog cancels this chunk (in-process:
                # a ChunkTimeout from the deadline registry; in a worker:
                # the parent kills us mid-sleep).  spec.delay caps the
                # stall so an unwatched hang cannot wedge a run forever.
                from ..governor.watchdog import hang_until_cancelled

                hang_until_cancelled(chunk_id, spec.delay)
            elif spec.action == "oom":
                from ...device.memory import DeviceOutOfMemory

                raise DeviceOutOfMemory(
                    f"injected device OOM: stage={stage} chunk={chunk_id}"
                )
            elif spec.action == "corrupt":
                from ..governor.integrity import ChunkCorruption

                raise ChunkCorruption(
                    f"injected corruption: stage={stage} chunk={chunk_id}"
                )
            else:
                raise InjectedFault(
                    f"injected fault: stage={stage} chunk={chunk_id}"
                )

    def hook_for(self, chunk_id: int) -> Optional[Callable[[str], None]]:
        """A per-chunk stage hook for :func:`spgemm_twophase`'s
        ``fault_hook`` parameter, or ``None`` when inert."""
        if not self._states:
            return None
        return lambda stage: self.fire(stage, chunk_id)


def as_injector(
    faults: Union[None, str, FaultInjector, Sequence[FaultSpec]]
) -> FaultInjector:
    """Normalize a faults argument; ``None`` reads :data:`FAULTS_ENV`."""
    if faults is None:
        return FaultInjector.from_env()
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, str):
        return FaultInjector.from_string(faults)
    return FaultInjector(list(faults))
