"""Panel-count planning against the device-memory budget.

In the paper's configuration the *inputs* fit in device memory and stay
resident; the output (plus the per-chunk intermediates) is what exceeds
the device.  The planner therefore reserves the resident-input footprint
and picks the smallest chunk grid such that the worst-case *chunk*
footprint — intermediate hash tables sized from the flops upper bound,
plus the worst-case output chunk — fits in the remaining pool
(Section IV.B).  Fewer, larger chunks amortize transfer latency better,
so the planner returns the coarsest grid that fits.

With asynchronous double buffering, *two* chunks are in flight at once,
so the chunk budget is halved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..device.specs import NodeSpec
from ..sparse.formats import CSRMatrix
from .chunks import BYTES_PER_ELEM, ChunkGrid, chunk_flops, csr_bytes

__all__ = [
    "PlanReport",
    "AutotunePlan",
    "chunk_footprint_bytes",
    "estimated_chunk_footprint_bytes",
    "working_set_bytes",
    "plan_grid",
    "plan_autotuned",
]

#: bytes of intermediate state per intermediate product (hash-table slot:
#: key + value at load factor 1/2)
INTERMEDIATE_BYTES_PER_PRODUCT = 32


@dataclass(frozen=True)
class PlanReport:
    """The planner's decision plus the numbers behind it."""

    grid: ChunkGrid
    worst_chunk_bytes: int
    budget_bytes: int
    device_memory: int
    buffers: int
    safety: float
    #: True when chunk footprints were sized from a sampled estimate
    #: (UB-ceilinged) rather than the raw flops upper bound
    estimated: bool = False

    @property
    def fits(self) -> bool:
        return self.worst_chunk_bytes <= self.budget_bytes


def chunk_footprint_bytes(rows: int, flops: int) -> int:
    """Worst-case device bytes needed to produce one chunk, beyond the
    resident input panels: intermediates (hash tables over all products)
    plus the worst-case output (every product distinct)."""
    products = flops // 2
    out_upper = csr_bytes(rows, products)
    intermediates = products * INTERMEDIATE_BYTES_PER_PRODUCT
    return intermediates + out_upper


def resident_input_bytes(a: CSRMatrix, b: CSRMatrix, num_col_panels: int) -> int:
    """Device footprint of the resident inputs: all of A (row panels are
    plain slices) and all of B split into column panels (each panel keeps
    its own full-height ``row_offsets`` array)."""
    a_bytes = csr_bytes(a.n_rows, a.nnz)
    b_bytes = b.nnz * BYTES_PER_ELEM + num_col_panels * (b.n_rows + 1) * 8
    return a_bytes + b_bytes


def working_set_bytes(n: int, nnz_in: int, flops: int, nnz_out: int) -> int:
    """Total device working set of ``C = A x B`` run in one piece: both
    inputs, the intermediate structures over all products, and the output.

    This is the quantity that must exceed device memory for the problem to
    be out-of-core; the experiment runner sizes the simulated device from
    it (DESIGN.md substitution table).
    """
    products = flops // 2
    inputs = 2 * csr_bytes(n, nnz_in)
    intermediates = products * INTERMEDIATE_BYTES_PER_PRODUCT
    # the output allocation is sized from the worst case (= products),
    # matching chunk_footprint_bytes; nnz_out bounds it from below
    output = csr_bytes(n, max(products, nnz_out))
    return inputs + intermediates + output


def estimated_chunk_footprint_bytes(rows: int, nnz_hi: float) -> int:
    """Device bytes to produce one chunk when intermediates and output
    are sized from a sampled nnz estimate (OCEAN) instead of the flops
    upper bound.  Callers must still apply the UB ceiling."""
    nnz = int(np.ceil(nnz_hi))
    return nnz * INTERMEDIATE_BYTES_PER_PRODUCT + csr_bytes(rows, nnz)


def _worst_chunk(a: CSRMatrix, b: CSRMatrix, grid: ChunkGrid, estimate=None) -> int:
    flops = chunk_flops(a, b, grid)
    chunk_est = None
    if estimate is not None:
        from ..spgemm.estimate import estimate_chunks  # deferred: cycle

        chunk_est = estimate_chunks(a, b, grid, estimate)
    worst = 0
    for rp in range(grid.num_row_panels):
        rows = int(grid.row_bounds[rp + 1] - grid.row_bounds[rp])
        for cp in range(grid.num_col_panels):
            footprint = chunk_footprint_bytes(rows, int(flops[rp, cp]))
            if chunk_est is not None:
                # the estimate only ever *tightens* the upper bound
                footprint = min(
                    footprint,
                    estimated_chunk_footprint_bytes(
                        rows, float(chunk_est.nnz_hi[rp, cp])
                    ),
                )
            worst = max(worst, footprint)
    return worst


def plan_grid(
    a: CSRMatrix,
    b: CSRMatrix,
    node: NodeSpec,
    *,
    safety: float = 0.85,
    buffers: int = 2,
    max_panels: int = 64,
    estimate=None,
) -> PlanReport:
    """Smallest square-ish grid whose worst chunk fits the budget.

    ``buffers`` is the number of concurrently resident chunks (2 for the
    asynchronous double-buffered pipeline).  Grids are tried in increasing
    total chunk count, preferring balanced (square) shapes; raises
    ``ValueError`` when even ``max_panels x max_panels`` does not fit.

    ``estimate`` (a :class:`~repro.spgemm.estimate.RowNnzEstimate`)
    switches chunk sizing to estimated footprints with the flops upper
    bound as a hard ceiling — on high-compression matrices this admits a
    much coarser grid than the UB alone would (Section IV.B's complaint
    about loose bounds).
    """
    if not 0 < safety <= 1:
        raise ValueError("safety must be in (0, 1]")

    # try grids in increasing chunk count; among equal counts prefer the
    # most balanced shape.  Rectangular shapes matter: for band-structured
    # matrices, splitting rows harder than columns shrinks the worst chunk
    # at the same chunk count (off-band chunks are empty anyway).
    candidates = sorted(
        (r * c, abs(r - c), r, c)
        for r in range(1, max_panels + 1)
        for c in range(1, max_panels + 1)
        if max(r, c) <= 4 * min(r, c)  # keep panel grids balanced
    )

    last_report = None
    for _, _, r, c in candidates:
        if r > a.n_rows or c > b.n_cols:
            continue
        resident = resident_input_bytes(a, b, c)
        free = node.gpu.device_memory_bytes - resident
        budget = int(free * safety) // max(buffers, 1)
        if budget <= 0:
            continue
        grid = ChunkGrid.regular(a.n_rows, b.n_cols, r, c)
        worst = _worst_chunk(a, b, grid, estimate)
        last_report = PlanReport(
            grid=grid,
            worst_chunk_bytes=worst,
            budget_bytes=budget,
            device_memory=node.gpu.device_memory_bytes,
            buffers=buffers,
            safety=safety,
            estimated=estimate is not None,
        )
        if worst <= budget:
            return last_report
    raise ValueError(
        f"no grid up to {max_panels}x{max_panels} fits the device budget; "
        f"last candidate: {last_report}"
    )


@dataclass(frozen=True)
class AutotunePlan:
    """Everything ``--autotune`` derives from one sampled estimate:
    the chunk grid (estimated footprints), the accumulator kernel
    (estimated density), and the hybrid CPU/GPU split ratio
    (estimated output size)."""

    report: PlanReport
    estimate: "RowNnzEstimate"  # noqa: F821 — forward ref, see estimate.py
    kernel: "KernelSpec"  # noqa: F821
    ratio: float

    @property
    def grid(self) -> ChunkGrid:
        return self.report.grid


def _report_for_grid(
    a: CSRMatrix,
    b: CSRMatrix,
    node: NodeSpec,
    grid: ChunkGrid,
    estimate,
    *,
    safety: float,
    buffers: int,
) -> Optional[PlanReport]:
    """Price an explicit grid shape; None when it misses the budget."""
    resident = resident_input_bytes(a, b, grid.num_col_panels)
    free = node.gpu.device_memory_bytes - resident
    budget = int(free * safety) // max(buffers, 1)
    if budget <= 0:
        return None
    worst = _worst_chunk(a, b, grid, estimate)
    if worst > budget:
        return None
    return PlanReport(
        grid=grid,
        worst_chunk_bytes=worst,
        budget_bytes=budget,
        device_memory=node.gpu.device_memory_bytes,
        buffers=buffers,
        safety=safety,
        estimated=estimate is not None,
    )


def _candidate_reports(
    a: CSRMatrix,
    b: CSRMatrix,
    node: NodeSpec,
    estimate,
    *,
    safety: float,
    buffers: int,
    max_panels: int,
) -> List[PlanReport]:
    """The autotune shortlist: estimate-admissible grid shapes worth
    trial-timing.

    The sampled estimate is what makes the shortlist small — only
    shapes whose worst *estimated* chunk fits the budget qualify.  It
    spans the shapes that matter in practice: the estimate-planned
    first fit, the UB-planned default (the baseline to beat), and a
    row-only ladder (r x 1, 2r x 1, 4r x 1) — row splits share the
    resident B panel and avoid re-walking A per column panel, so they
    dominate serial wall time whenever the whole of B fits.
    """
    reports: List[PlanReport] = []
    shapes = set()

    def add(report: Optional[PlanReport]) -> None:
        if report is None:
            return
        shape = (report.grid.num_row_panels, report.grid.num_col_panels)
        if shape not in shapes:
            shapes.add(shape)
            reports.append(report)

    add(plan_grid(a, b, node, safety=safety, buffers=buffers,
                  max_panels=max_panels, estimate=estimate))
    try:
        ub = plan_grid(a, b, node, safety=safety, buffers=buffers,
                       max_panels=max_panels)
    except ValueError:
        ub = None
    add(ub)
    # row-only ladder from the smallest fitting row count
    r0 = None
    for r in range(1, min(max_panels, a.n_rows) + 1):
        grid = ChunkGrid.regular(a.n_rows, b.n_cols, r, 1)
        report = _report_for_grid(a, b, node, grid, estimate,
                                  safety=safety, buffers=buffers)
        if report is not None:
            r0 = r
            add(report)
            break
    if r0 is not None:
        for r in (2 * r0, 4 * r0):
            if r > min(max_panels, a.n_rows):
                continue
            grid = ChunkGrid.regular(a.n_rows, b.n_cols, r, 1)
            add(_report_for_grid(a, b, node, grid, estimate,
                                 safety=safety, buffers=buffers))
    return reports


def plan_autotuned(
    a: CSRMatrix,
    b: CSRMatrix,
    node: NodeSpec,
    *,
    cost=None,
    sample_fraction: Optional[float] = None,
    seed: int = 0,
    safety: float = 0.85,
    buffers: int = 2,
    max_panels: int = 64,
    trial=None,
) -> AutotunePlan:
    """One-stop estimation-driven tuning: sample A once, then derive
    grid + kernel + hybrid ratio from that single estimate.

    ``trial`` enables empirical grid selection: a callable
    ``trial(grid, kernel) -> seconds`` (e.g. one quick serial run) is
    invoked once per shortlisted candidate — the sampled estimate prunes
    the shape space to a handful of admissible grids, the measured trial
    picks the winner.  Without ``trial`` the estimate-planned first fit
    is used directly.
    """
    from ..device.kernels import default_cost_model  # deferred: cycle
    from ..spgemm.estimate import (
        DEFAULT_SAMPLE_FRACTION,
        choose_kernel,
        estimate_row_nnz,
        hybrid_ratio_from_estimate,
    )
    from ..spgemm.flops import total_flops

    if sample_fraction is None:
        sample_fraction = DEFAULT_SAMPLE_FRACTION
    est = estimate_row_nnz(a, b, sample_fraction=sample_fraction, seed=seed)
    kernel = choose_kernel(est)
    if trial is not None:
        candidates = _candidate_reports(
            a, b, node, est,
            safety=safety, buffers=buffers, max_panels=max_panels,
        )
        report = min(candidates, key=lambda rep: trial(rep.grid, kernel))
    else:
        report = plan_grid(
            a, b, node,
            safety=safety, buffers=buffers, max_panels=max_panels,
            estimate=est,
        )
    if cost is None:
        cost = default_cost_model(node)
    ratio = hybrid_ratio_from_estimate(est, total_flops(a, b), cost)
    return AutotunePlan(report=report, estimate=est, kernel=kernel, ratio=ratio)
