"""Panel-count planning against the device-memory budget.

In the paper's configuration the *inputs* fit in device memory and stay
resident; the output (plus the per-chunk intermediates) is what exceeds
the device.  The planner therefore reserves the resident-input footprint
and picks the smallest chunk grid such that the worst-case *chunk*
footprint — intermediate hash tables sized from the flops upper bound,
plus the worst-case output chunk — fits in the remaining pool
(Section IV.B).  Fewer, larger chunks amortize transfer latency better,
so the planner returns the coarsest grid that fits.

With asynchronous double buffering, *two* chunks are in flight at once,
so the chunk budget is halved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device.specs import NodeSpec
from ..sparse.formats import CSRMatrix
from .chunks import BYTES_PER_ELEM, ChunkGrid, chunk_flops, csr_bytes

__all__ = ["PlanReport", "chunk_footprint_bytes", "working_set_bytes", "plan_grid"]

#: bytes of intermediate state per intermediate product (hash-table slot:
#: key + value at load factor 1/2)
INTERMEDIATE_BYTES_PER_PRODUCT = 32


@dataclass(frozen=True)
class PlanReport:
    """The planner's decision plus the numbers behind it."""

    grid: ChunkGrid
    worst_chunk_bytes: int
    budget_bytes: int
    device_memory: int
    buffers: int
    safety: float

    @property
    def fits(self) -> bool:
        return self.worst_chunk_bytes <= self.budget_bytes


def chunk_footprint_bytes(rows: int, flops: int) -> int:
    """Worst-case device bytes needed to produce one chunk, beyond the
    resident input panels: intermediates (hash tables over all products)
    plus the worst-case output (every product distinct)."""
    products = flops // 2
    out_upper = csr_bytes(rows, products)
    intermediates = products * INTERMEDIATE_BYTES_PER_PRODUCT
    return intermediates + out_upper


def resident_input_bytes(a: CSRMatrix, b: CSRMatrix, num_col_panels: int) -> int:
    """Device footprint of the resident inputs: all of A (row panels are
    plain slices) and all of B split into column panels (each panel keeps
    its own full-height ``row_offsets`` array)."""
    a_bytes = csr_bytes(a.n_rows, a.nnz)
    b_bytes = b.nnz * BYTES_PER_ELEM + num_col_panels * (b.n_rows + 1) * 8
    return a_bytes + b_bytes


def working_set_bytes(n: int, nnz_in: int, flops: int, nnz_out: int) -> int:
    """Total device working set of ``C = A x B`` run in one piece: both
    inputs, the intermediate structures over all products, and the output.

    This is the quantity that must exceed device memory for the problem to
    be out-of-core; the experiment runner sizes the simulated device from
    it (DESIGN.md substitution table).
    """
    products = flops // 2
    inputs = 2 * csr_bytes(n, nnz_in)
    intermediates = products * INTERMEDIATE_BYTES_PER_PRODUCT
    # the output allocation is sized from the worst case (= products),
    # matching chunk_footprint_bytes; nnz_out bounds it from below
    output = csr_bytes(n, max(products, nnz_out))
    return inputs + intermediates + output


def _worst_chunk(a: CSRMatrix, b: CSRMatrix, grid: ChunkGrid) -> int:
    flops = chunk_flops(a, b, grid)
    worst = 0
    for rp in range(grid.num_row_panels):
        rows = int(grid.row_bounds[rp + 1] - grid.row_bounds[rp])
        for cp in range(grid.num_col_panels):
            worst = max(worst, chunk_footprint_bytes(rows, int(flops[rp, cp])))
    return worst


def plan_grid(
    a: CSRMatrix,
    b: CSRMatrix,
    node: NodeSpec,
    *,
    safety: float = 0.85,
    buffers: int = 2,
    max_panels: int = 64,
) -> PlanReport:
    """Smallest square-ish grid whose worst chunk fits the budget.

    ``buffers`` is the number of concurrently resident chunks (2 for the
    asynchronous double-buffered pipeline).  Grids are tried in increasing
    total chunk count, preferring balanced (square) shapes; raises
    ``ValueError`` when even ``max_panels x max_panels`` does not fit.
    """
    if not 0 < safety <= 1:
        raise ValueError("safety must be in (0, 1]")

    # try grids in increasing chunk count; among equal counts prefer the
    # most balanced shape.  Rectangular shapes matter: for band-structured
    # matrices, splitting rows harder than columns shrinks the worst chunk
    # at the same chunk count (off-band chunks are empty anyway).
    candidates = sorted(
        (r * c, abs(r - c), r, c)
        for r in range(1, max_panels + 1)
        for c in range(1, max_panels + 1)
        if max(r, c) <= 4 * min(r, c)  # keep panel grids balanced
    )

    last_report = None
    for _, _, r, c in candidates:
        if r > a.n_rows or c > b.n_cols:
            continue
        resident = resident_input_bytes(a, b, c)
        free = node.gpu.device_memory_bytes - resident
        budget = int(free * safety) // max(buffers, 1)
        if budget <= 0:
            continue
        grid = ChunkGrid.regular(a.n_rows, b.n_cols, r, c)
        worst = _worst_chunk(a, b, grid)
        last_report = PlanReport(
            grid=grid,
            worst_chunk_bytes=worst,
            budget_bytes=budget,
            device_memory=node.gpu.device_memory_bytes,
            buffers=buffers,
            safety=safety,
        )
        if worst <= budget:
            return last_report
    raise ValueError(
        f"no grid up to {max_panels}x{max_panels} fits the device budget; "
        f"last candidate: {last_report}"
    )
