"""The paper's contribution: out-of-core, asynchronous, hybrid SpGEMM."""

from .api import (
    make_profile,
    run_hybrid,
    run_out_of_core,
    simulate_cpu_baseline,
    simulate_hybrid,
    simulate_out_of_core,
    spgemm,
)
from .assemble import assemble_chunks
from .chunks import ChunkGrid, ChunkProfile, ChunkStats, chunk_flops, profile_chunks
from .executor import (
    EXECUTOR_BACKENDS,
    BackendDegradedWarning,
    BackendUnavailable,
    ChunkExecutionError,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    WorkerCrashed,
    execute_chunk_grid,
    plan_hybrid_lanes,
)
from .hybrid import (
    DEFAULT_RATIO,
    HybridAssignment,
    assign_chunks,
    assign_first_n,
    best_gpu_chunk_count,
    build_hybrid_engine,
)
from .memcheck import MemoryReplay, replay_dynamic, replay_pool
from .multigpu import (
    MultiGPUAssignment,
    assign_lpt,
    build_multi_gpu_engine,
    simulate_multi_gpu,
)
from .planner import PlanReport, chunk_footprint_bytes, plan_grid, working_set_bytes
from .results import RunResult
from .spill import DiskChunkStore, ManifestMismatch, MemoryChunkStore, RunManifest
from .verify import verify_product, verify_run, verify_store
from .schedule import build_async_schedule, build_sync_schedule

__all__ = [
    "make_profile",
    "run_hybrid",
    "run_out_of_core",
    "simulate_cpu_baseline",
    "simulate_hybrid",
    "simulate_out_of_core",
    "spgemm",
    "assemble_chunks",
    "ChunkGrid",
    "ChunkProfile",
    "ChunkStats",
    "chunk_flops",
    "profile_chunks",
    "EXECUTOR_BACKENDS",
    "BackendDegradedWarning",
    "BackendUnavailable",
    "ChunkExecutionError",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "WorkerCrashed",
    "execute_chunk_grid",
    "plan_hybrid_lanes",
    "DEFAULT_RATIO",
    "HybridAssignment",
    "assign_chunks",
    "assign_first_n",
    "best_gpu_chunk_count",
    "build_hybrid_engine",
    "PlanReport",
    "chunk_footprint_bytes",
    "plan_grid",
    "working_set_bytes",
    "MemoryReplay",
    "replay_dynamic",
    "replay_pool",
    "MultiGPUAssignment",
    "assign_lpt",
    "build_multi_gpu_engine",
    "simulate_multi_gpu",
    "RunResult",
    "DiskChunkStore",
    "ManifestMismatch",
    "MemoryChunkStore",
    "RunManifest",
    "verify_product",
    "verify_run",
    "verify_store",
    "build_async_schedule",
    "build_sync_schedule",
]
