"""Stitching output chunks back into the full result matrix.

On the real system the host accumulates arriving chunks into (pinned)
host memory; here the equivalent operation is a pure-CSR concatenation:
chunks of one row panel concatenate horizontally (column panels are
contiguous column ranges), and the row panels stack vertically.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sparse.formats import CSRMatrix
from ..sparse.ops import hstack, vstack

__all__ = ["assemble_chunks"]


def assemble_chunks(outputs: Sequence[Sequence[CSRMatrix]]) -> CSRMatrix:
    """Assemble ``outputs[row_panel][col_panel]`` into the full matrix.

    Validates that every row of chunks agrees on row count and that every
    column of chunks agrees on column count.
    """
    if not outputs or not outputs[0]:
        raise ValueError("no chunks to assemble")
    num_cols = len(outputs[0])
    if any(len(row) != num_cols for row in outputs):
        raise ValueError("ragged chunk grid")
    for cp in range(num_cols):
        widths = {row[cp].n_cols for row in outputs}
        if len(widths) != 1:
            raise ValueError(f"column panel {cp} has inconsistent widths {widths}")

    strips: List[CSRMatrix] = [hstack(list(row)) for row in outputs]
    return vstack(strips)
