"""Result verification helpers.

Convenience wrappers asserting that an executor's output equals the
reference product — the check every test performs, packaged for library
users (e.g. in CI of a downstream project).
"""

from __future__ import annotations

from ..sparse.formats import CSRMatrix
from ..sparse.ops import drop_explicit_zeros
from ..spgemm.reference import spgemm_scipy
from .results import RunResult
from .spill import MemoryChunkStore

__all__ = ["verify_product", "verify_run", "verify_store"]


def verify_product(
    candidate: CSRMatrix, a: CSRMatrix, b: CSRMatrix,
    *, rtol: float = 1e-9, atol: float = 1e-12,
) -> bool:
    """True iff ``candidate`` equals ``A x B`` (structure and values)."""
    expected = spgemm_scipy(a, b)
    got = drop_explicit_zeros(candidate)
    return got.shape == expected.shape and got.allclose(expected, rtol=rtol, atol=atol)


def verify_run(result: RunResult, a: CSRMatrix, b: CSRMatrix) -> bool:
    """Verify a :class:`RunResult` that kept its output matrix.

    Raises ``ValueError`` when the run was executed with
    ``keep_output=False`` (nothing to verify).
    """
    if result.matrix is None:
        raise ValueError(
            "run kept no output (keep_output=False); verify the chunk store "
            "with verify_store instead"
        )
    return verify_product(result.matrix, a, b)


def verify_store(store: MemoryChunkStore, a: CSRMatrix, b: CSRMatrix) -> bool:
    """Verify a chunk store filled by ``run_out_of_core(chunk_store=...)``."""
    return verify_product(store.assemble(), a, b)
