"""Multi-GPU extension: the paper's scaling theme pushed further.

The paper targets one GPU + one CPU; its conclusion motivates "continuing
to scale SpGEMM computations to arbitrarily large matrices".  This module
extends the asynchronous pipeline to ``num_gpus`` devices, each with its
own compute engine and its own pair of DMA engines (a DGX-style node where
every GPU has an independent PCIe/NVLink path to host memory):

* chunks are distributed by **LPT (longest processing time first)** over
  the *estimated* per-chunk GPU time — transfer plus compute from the cost
  model — which both balances the devices and preserves the paper's
  decreasing-size execution order within each device;
* each device runs the full Fig. 6 pipeline (divided transfers, double
  buffering) on its own engines;
* optionally, the multicore CPU joins as an extra device (the hybrid
  generalized to ``num_gpus + 1`` workers).

Everything is simulation-only composition: the numeric results are chunk
products already computed by profiling, so a multi-GPU run is exactly as
correct as the single-GPU one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..device.engine import SimEngine
from ..device.kernels import CostModel
from .chunks import ChunkProfile, ChunkStats
from .schedule import CPU, add_cpu_chunks, build_async_schedule

__all__ = ["MultiGPUAssignment", "estimate_chunk_gpu_time", "assign_lpt", "build_multi_gpu_engine"]


@dataclass(frozen=True)
class MultiGPUAssignment:
    """Chunk lists per device, each in decreasing estimated-time order."""

    per_gpu: Tuple[Tuple[int, ...], ...]
    cpu_chunks: Tuple[int, ...]

    @property
    def num_gpus(self) -> int:
        return len(self.per_gpu)


def estimate_chunk_gpu_time(cm: CostModel, ch: ChunkStats) -> float:
    """Pre-execution estimate of a chunk's GPU cost: all three kernel
    stages plus the result transfer (the pipeline hides the smaller of
    compute/transfer, so the sum is a safe balancing weight)."""
    return (
        cm.t_analysis(ch.input_nnz)
        + cm.t_symbolic(ch.flops, ch.nnz_out, ch.symbolic_kernels)
        + cm.t_numeric(ch.flops, ch.nnz_out, ch.numeric_kernels)
        + cm.t_d2h(ch.output_bytes)
    )


def assign_lpt(
    profile: ChunkProfile,
    cm: CostModel,
    num_gpus: int,
    *,
    cpu_share: float = 0.0,
) -> MultiGPUAssignment:
    """LPT distribution of chunks over the devices.

    ``cpu_share`` > 0 first peels off that flop fraction for the CPU
    (smallest chunks, as in Algorithm 4), then LPT-balances the rest.
    """
    if num_gpus < 1:
        raise ValueError("need at least one GPU")
    if not 0.0 <= cpu_share < 1.0:
        raise ValueError("cpu_share must be in [0, 1)")

    order = profile.order_by_flops_desc()
    cpu_chunks: List[int] = []
    if cpu_share > 0.0:
        total = profile.total_flops
        acc = 0
        # take the sparsest tail until the CPU share is reached
        for cid in reversed(order):
            if total == 0 or acc / total >= cpu_share:
                break
            acc += profile.chunks[cid].flops
            cpu_chunks.append(cid)
        order = [c for c in order if c not in set(cpu_chunks)]

    loads = [0.0] * num_gpus
    buckets: List[List[int]] = [[] for _ in range(num_gpus)]
    for cid in order:  # already decreasing flops ~ decreasing time
        g = min(range(num_gpus), key=lambda i: loads[i])
        buckets[g].append(cid)
        loads[g] += estimate_chunk_gpu_time(cm, profile.chunks[cid])
    return MultiGPUAssignment(
        per_gpu=tuple(tuple(b) for b in buckets),
        cpu_chunks=tuple(cpu_chunks),
    )


def build_multi_gpu_engine(
    profile: ChunkProfile,
    cm: CostModel,
    assignment: MultiGPUAssignment,
    **async_kwargs,
) -> SimEngine:
    """One engine running every device's pipeline concurrently."""
    eng = SimEngine()
    eng.add_resource(CPU)
    for g in range(assignment.num_gpus):
        eng.add_resource(f"gpu{g}")
        eng.add_resource(f"h2d{g}")
        eng.add_resource(f"d2h{g}")
    for g, chunks in enumerate(assignment.per_gpu):
        if not chunks:
            continue
        build_async_schedule(
            profile, cm, order=chunks, eng=eng,
            gpu=f"gpu{g}", h2d=f"h2d{g}", d2h=f"d2h{g}",
            stream_prefix=f"g{g}s", **async_kwargs,
        )
    if assignment.cpu_chunks:
        add_cpu_chunks(eng, profile, cm, assignment.cpu_chunks)
    return eng


def simulate_multi_gpu(
    profile: ChunkProfile,
    cm: CostModel,
    num_gpus: int,
    *,
    cpu_share: float = 0.0,
    **async_kwargs,
):
    """Convenience: assign + build + run; returns the Timeline."""
    assignment = assign_lpt(profile, cm, num_gpus, cpu_share=cpu_share)
    return build_multi_gpu_engine(profile, cm, assignment, **async_kwargs).run()
