"""End-to-end integrity checksums for chunk data at rest.

Every chunk that leaves process memory — spilled to a
:class:`~repro.core.spill.DiskChunkStore`, checkpointed next to a
:class:`~repro.core.spill.RunManifest` — is stamped with a CRC32 over
its full CSR content (shape + structure + values) and verified when it
is read back.  A truncated, bit-flipped, or otherwise unparseable file
then surfaces as a typed :class:`ChunkCorruption` instead of a raw numpy
error deep inside assembly — and, crucially, instead of a silently
wrong answer.  ``ChunkCorruption`` is an ``Exception``, so the default
:class:`~repro.core.executor.faults.RetryPolicy` classifies it as
retryable: the recovery for corrupt data is simply to recompute the
chunk (chunks are deterministic, so the redo is bit-identical).

CRC32 (:func:`zlib.crc32`) is deliberate: this is a *storage integrity*
check against torn writes and media corruption, not an authenticity
check, and it adds negligible cost next to the ``.npz`` compression the
chunks already pay.
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

__all__ = ["ChunkCorruption", "crc32_matrix", "crc32_bytes"]


class ChunkCorruption(RuntimeError):
    """Stored chunk data failed its integrity check (or did not parse).

    Carries the file path and panel coordinates when known, so an
    operator can locate (and delete) the bad file; the executor treats
    the error as retryable — the chunk is recomputed from the operands.
    """

    def __init__(self, message: str, *, path: Optional[str] = None,
                 row_panel: Optional[int] = None,
                 col_panel: Optional[int] = None) -> None:
        detail = message
        if row_panel is not None and col_panel is not None:
            detail += f" [panel ({row_panel}, {col_panel})]"
        if path is not None:
            detail += f" [{path}]"
        super().__init__(detail)
        self.path = str(path) if path is not None else None
        self.row_panel = row_panel
        self.col_panel = col_panel


def crc32_bytes(*parts: bytes) -> int:
    """CRC32 over a sequence of byte strings (a single rolling checksum)."""
    crc = 0
    for part in parts:
        crc = zlib.crc32(part, crc)
    return crc & 0xFFFFFFFF


def crc32_matrix(matrix) -> int:
    """CRC32 fingerprint of a CSR matrix: shape, structure, and values.

    Covers everything :func:`repro.sparse.io.save_npz` persists, in a
    fixed order, so the checksum of a stored chunk is reproducible from
    the in-memory matrix alone.
    """
    shape = np.asarray(matrix.shape, dtype=np.int64)
    return crc32_bytes(
        shape.tobytes(),
        np.ascontiguousarray(matrix.row_offsets).tobytes(),
        np.ascontiguousarray(matrix.col_ids).tobytes(),
        np.ascontiguousarray(matrix.data).tobytes(),
    )
