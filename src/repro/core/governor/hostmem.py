"""Host-memory admission control with backpressure and spill-under-pressure.

The paper assembles arriving chunks in 128 GB of host memory; nothing in
the pipeline *enforced* that budget.  :class:`HostMemoryGovernor` does:
it maintains a byte ledger of

* **in-flight reservations** — an upper-bound estimate of every chunk
  currently past dispatch but not yet released (its kernel may be
  running in a worker, its result segment may be awaiting consumption,
  its sink write may be in progress), plus
* **stored bytes** — what an attached chunk store currently holds in
  host memory,

and admits a new dispatch only while ``reserved + stored + estimate``
stays within the budget.  When it does not, the governor first tries to
*make room*: an attached spill-capable store (see
:class:`~repro.core.spill.SpillableChunkStore`) is asked to migrate
chunks to disk.  If pressure persists, the dispatching lane blocks —
backpressure — until completions release reservations.

Deadlock freedom / minimum progress: a lane that holds no reservation
of its own and observes *no* reservations anywhere is admitted
unconditionally (after a final spill attempt) even if the estimate
alone exceeds the budget — one chunk must always be able to run, and a
single chunk larger than the budget is a planning error the run should
surface by completing, not by hanging.  Such forced admissions are
counted (``overcommits``) and visible in the gauges.

Estimates are upper bounds (``csr_bytes`` of the chunk's flop-derived
worst-case output), so the enforced ceiling is conservative; the
``host_mem`` gauge stream records ``reserved`` / ``stored`` / ``budget``
after every transition, which is how tests assert the budget was never
exceeded.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, List

from ...observability import as_tracer

__all__ = ["HostMemoryGovernor", "ScopedLedger"]

#: seconds between forced re-evaluations while blocked on admission —
#: a safety net against a missed notify, not the primary wake-up path
_WAIT_STEP = 0.05


class HostMemoryGovernor:
    """Byte-budget admission control shared by every lane of one run."""

    def __init__(self, budget_bytes: int, *, tracer=None) -> None:
        if budget_bytes < 1:
            raise ValueError("host memory budget must be >= 1 byte")
        self.budget_bytes = int(budget_bytes)
        self._cond = threading.Condition()
        # reservation key -> reserved bytes.  Keys are chunk ids for a
        # single run, job ids for the serve scheduler, and
        # ``(namespace, chunk_id)`` tuples for scoped shard views — any
        # hashable works, the ledger only sums the values.
        self._reserved: Dict[Hashable, int] = {}
        self._stores: List[object] = []
        self._tracer = as_tracer(tracer)
        self.overcommits = 0
        self.spill_requests = 0
        self.peak_bytes = 0  # max(reserved + stored) ever observed

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind_tracer(self, tracer) -> None:
        self._tracer = as_tracer(tracer)

    def attach_store(self, store) -> None:
        """Attach the run's chunk store, replacing any previous one.

        Its in-memory footprint joins the ledger (``held_bytes`` /
        ``nbytes``), and — when it exposes ``spill(min_bytes)`` — it
        becomes the pressure valve admission can squeeze."""
        self._stores = [store]

    def add_store(self, store) -> None:
        """Attach one *additional* chunk store.

        A node-wide ledger shared by N shards counts every shard's store
        against the one budget; each :class:`ScopedLedger` routes its
        run's ``attach_store`` here so stores accumulate instead of
        replacing each other."""
        with self._cond:
            if store not in self._stores:
                self._stores.append(store)

    def scoped(self, namespace: Hashable) -> "ScopedLedger":
        """A view of this ledger whose reservation keys are prefixed with
        ``namespace`` — how N concurrent shard runs (each keying by its
        own local chunk ids) share one node budget without collisions."""
        return ScopedLedger(self, namespace)

    # ------------------------------------------------------------------
    # ledger
    # ------------------------------------------------------------------
    def _stored_bytes(self) -> int:
        total = 0
        for store in self._stores:
            held = getattr(store, "held_bytes", None)
            total += int(held) if held is not None else int(store.nbytes())
        return total

    def held_bytes(self) -> int:
        """Bytes currently charged against the budget."""
        with self._cond:
            return sum(self._reserved.values()) + self._stored_bytes()

    def _note(self) -> None:
        # called with the condition held
        reserved = sum(self._reserved.values())
        stored = self._stored_bytes()
        self.peak_bytes = max(self.peak_bytes, reserved + stored)
        if self._tracer.enabled:
            self._tracer.gauge("host_mem", reserved=reserved, stored=stored,
                               budget=self.budget_bytes)

    def _make_room(self, needed: int) -> None:
        # called with the condition held; best-effort — spilling less
        # than asked (or nothing) simply leaves admission blocked
        if needed <= 0:
            return
        for store in self._stores:
            spill = getattr(store, "spill", None)
            if spill is None:
                continue
            self.spill_requests += 1
            freed = spill(needed)
            needed -= int(freed or 0)
            if needed <= 0:
                return

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, chunk_id: Hashable, estimate_bytes: int, *,
              may_wait: bool) -> bool:
        """Reserve ``estimate_bytes`` for ``chunk_id`` within the budget.

        Returns ``True`` once reserved (idempotent for an already
        admitted chunk — retries keep their reservation).  With
        ``may_wait=False`` a denial returns ``False`` immediately: the
        caller has completions of its own to wait on, which is the
        backpressure path.  With ``may_wait=True`` the call blocks until
        room frees up, force-admitting only when no reservation exists
        anywhere (minimum progress).
        """
        estimate_bytes = max(int(estimate_bytes), 0)
        with self._cond:
            while True:
                if chunk_id in self._reserved:
                    return True
                reserved = sum(self._reserved.values())
                over = reserved + self._stored_bytes() + estimate_bytes \
                    - self.budget_bytes
                if over > 0:
                    self._make_room(over)
                    over = reserved + self._stored_bytes() \
                        + estimate_bytes - self.budget_bytes
                if over <= 0:
                    self._reserved[chunk_id] = estimate_bytes
                    self._note()
                    return True
                if not may_wait:
                    return False
                if not self._reserved:
                    # nothing in flight anywhere: admit regardless, or
                    # no chunk could ever run under a too-small budget
                    self.overcommits += 1
                    self._reserved[chunk_id] = estimate_bytes
                    self._note()
                    if self._tracer.enabled:
                        self._tracer.bump("governor", overcommits=1)
                    return True
                self._cond.wait(_WAIT_STEP)

    def release(self, chunk_id: Hashable) -> None:
        """Drop the chunk's reservation and wake blocked admissions."""
        with self._cond:
            if self._reserved.pop(chunk_id, None) is not None:
                self._note()
                self._cond.notify_all()


class ScopedLedger:
    """A namespaced view of one shared :class:`HostMemoryGovernor`.

    The engine charges reservations by *local* chunk id; when N shard
    runs share one node ledger those ids collide.  A scoped view
    rewrites every key to ``(namespace, chunk_id)`` so each shard's
    reservations stay distinct while the byte budget — admission,
    backpressure, spill-under-pressure, the minimum-progress escape —
    is enforced globally across all shards.

    ``bind_tracer`` is deliberately a no-op: the shared ledger keeps
    emitting its ``host_mem`` gauge stream on the *node* tracer it was
    constructed with, instead of being re-bound by whichever shard run
    starts last.  ``attach_store`` adds the shard's chunk store to the
    shared ledger (stores accumulate; see
    :meth:`HostMemoryGovernor.add_store`).
    """

    def __init__(self, base: HostMemoryGovernor, namespace: Hashable) -> None:
        self.base = base
        self.namespace = namespace

    @property
    def budget_bytes(self) -> int:
        return self.base.budget_bytes

    @property
    def peak_bytes(self) -> int:
        return self.base.peak_bytes

    @property
    def overcommits(self) -> int:
        return self.base.overcommits

    def held_bytes(self) -> int:
        return self.base.held_bytes()

    def bind_tracer(self, tracer) -> None:  # see class docstring
        pass

    def attach_store(self, store) -> None:
        self.base.add_store(store)

    def admit(self, chunk_id: Hashable, estimate_bytes: int, *,
              may_wait: bool) -> bool:
        return self.base.admit((self.namespace, chunk_id), estimate_bytes,
                               may_wait=may_wait)

    def release(self, chunk_id: Hashable) -> None:
        self.base.release((self.namespace, chunk_id))
