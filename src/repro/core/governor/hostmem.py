"""Host-memory admission control with backpressure and spill-under-pressure.

The paper assembles arriving chunks in 128 GB of host memory; nothing in
the pipeline *enforced* that budget.  :class:`HostMemoryGovernor` does:
it maintains a byte ledger of

* **in-flight reservations** — an upper-bound estimate of every chunk
  currently past dispatch but not yet released (its kernel may be
  running in a worker, its result segment may be awaiting consumption,
  its sink write may be in progress), plus
* **stored bytes** — what an attached chunk store currently holds in
  host memory,

and admits a new dispatch only while ``reserved + stored + estimate``
stays within the budget.  When it does not, the governor first tries to
*make room*: an attached spill-capable store (see
:class:`~repro.core.spill.SpillableChunkStore`) is asked to migrate
chunks to disk.  If pressure persists, the dispatching lane blocks —
backpressure — until completions release reservations.

Deadlock freedom / minimum progress: a lane that holds no reservation
of its own and observes *no* reservations anywhere is admitted
unconditionally (after a final spill attempt) even if the estimate
alone exceeds the budget — one chunk must always be able to run, and a
single chunk larger than the budget is a planning error the run should
surface by completing, not by hanging.  Such forced admissions are
counted (``overcommits``) and visible in the gauges.

Estimates are upper bounds (``csr_bytes`` of the chunk's flop-derived
worst-case output), so the enforced ceiling is conservative; the
``host_mem`` gauge stream records ``reserved`` / ``stored`` / ``budget``
after every transition, which is how tests assert the budget was never
exceeded.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ...observability import as_tracer

__all__ = ["HostMemoryGovernor"]

#: seconds between forced re-evaluations while blocked on admission —
#: a safety net against a missed notify, not the primary wake-up path
_WAIT_STEP = 0.05


class HostMemoryGovernor:
    """Byte-budget admission control shared by every lane of one run."""

    def __init__(self, budget_bytes: int, *, tracer=None) -> None:
        if budget_bytes < 1:
            raise ValueError("host memory budget must be >= 1 byte")
        self.budget_bytes = int(budget_bytes)
        self._cond = threading.Condition()
        self._reserved: Dict[int, int] = {}  # chunk id -> reserved bytes
        self._store = None
        self._tracer = as_tracer(tracer)
        self.overcommits = 0
        self.spill_requests = 0
        self.peak_bytes = 0  # max(reserved + stored) ever observed

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind_tracer(self, tracer) -> None:
        self._tracer = as_tracer(tracer)

    def attach_store(self, store) -> None:
        """Attach the run's chunk store.

        Its in-memory footprint joins the ledger (``held_bytes`` /
        ``nbytes``), and — when it exposes ``spill(min_bytes)`` — it
        becomes the pressure valve admission can squeeze."""
        self._store = store

    # ------------------------------------------------------------------
    # ledger
    # ------------------------------------------------------------------
    def _stored_bytes(self) -> int:
        if self._store is None:
            return 0
        held = getattr(self._store, "held_bytes", None)
        if held is not None:
            return int(held)
        return int(self._store.nbytes())

    def held_bytes(self) -> int:
        """Bytes currently charged against the budget."""
        with self._cond:
            return sum(self._reserved.values()) + self._stored_bytes()

    def _note(self) -> None:
        # called with the condition held
        reserved = sum(self._reserved.values())
        stored = self._stored_bytes()
        self.peak_bytes = max(self.peak_bytes, reserved + stored)
        if self._tracer.enabled:
            self._tracer.gauge("host_mem", reserved=reserved, stored=stored,
                               budget=self.budget_bytes)

    def _make_room(self, needed: int) -> None:
        # called with the condition held; best-effort — spilling less
        # than asked (or nothing) simply leaves admission blocked
        spill = getattr(self._store, "spill", None)
        if spill is None or needed <= 0:
            return
        self.spill_requests += 1
        spill(needed)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, chunk_id: int, estimate_bytes: int, *,
              may_wait: bool) -> bool:
        """Reserve ``estimate_bytes`` for ``chunk_id`` within the budget.

        Returns ``True`` once reserved (idempotent for an already
        admitted chunk — retries keep their reservation).  With
        ``may_wait=False`` a denial returns ``False`` immediately: the
        caller has completions of its own to wait on, which is the
        backpressure path.  With ``may_wait=True`` the call blocks until
        room frees up, force-admitting only when no reservation exists
        anywhere (minimum progress).
        """
        estimate_bytes = max(int(estimate_bytes), 0)
        with self._cond:
            while True:
                if chunk_id in self._reserved:
                    return True
                reserved = sum(self._reserved.values())
                over = reserved + self._stored_bytes() + estimate_bytes \
                    - self.budget_bytes
                if over > 0:
                    self._make_room(over)
                    over = reserved + self._stored_bytes() \
                        + estimate_bytes - self.budget_bytes
                if over <= 0:
                    self._reserved[chunk_id] = estimate_bytes
                    self._note()
                    return True
                if not may_wait:
                    return False
                if not self._reserved:
                    # nothing in flight anywhere: admit regardless, or
                    # no chunk could ever run under a too-small budget
                    self.overcommits += 1
                    self._reserved[chunk_id] = estimate_bytes
                    self._note()
                    if self._tracer.enabled:
                        self._tracer.bump("governor", overcommits=1)
                    return True
                self._cond.wait(_WAIT_STEP)

    def release(self, chunk_id: int) -> None:
        """Drop the chunk's reservation and wake blocked admissions."""
        with self._cond:
            if self._reserved.pop(chunk_id, None) is not None:
                self._note()
                self._cond.notify_all()
