"""Runtime governor: deadlines, memory pressure, and data integrity.

PR 4 taught the executor to survive *crashes*; this layer covers the
failure modes a crash budget cannot see:

* **hangs** — per-chunk wall-clock deadlines plus worker heartbeats
  (:mod:`.watchdog`); a hung chunk surfaces as a retryable
  :class:`ChunkTimeout` instead of stalling the run;
* **host memory exhaustion** — byte-budget admission control with
  backpressure and spill-under-pressure (:mod:`.hostmem`);
* **device memory exhaustion** — a pre-dispatch footprint check against
  the device pool plus adaptive row-panel re-splitting when a chunk
  overflows it (driven by the engine, bit-identical on assembly);
* **silent corruption** — CRC32 integrity stamps on every chunk at rest
  (:mod:`.integrity`), surfacing as a retryable
  :class:`ChunkCorruption`.

Configuration is one frozen :class:`GovernorConfig`; a :class:`Governor`
is the per-run runtime the engine threads through the backends::

    from repro.core import run_out_of_core
    from repro.core.governor import Governor, GovernorConfig

    gov = Governor(GovernorConfig(
        deadline_seconds=30.0,          # per-chunk wall-clock budget
        heartbeat_interval=1.0,         # worker liveness granularity
        host_mem_budget_bytes=1 << 30,  # in-flight + stored ceiling
        device_pool_bytes=1 << 28,      # re-split chunks that overflow
    ))
    res = run_out_of_core(a, b, workers=4, backend="process", governor=gov)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .hostmem import HostMemoryGovernor, ScopedLedger
from .integrity import ChunkCorruption, crc32_bytes, crc32_matrix
from .watchdog import (
    ChunkTimeout,
    HeartbeatLease,
    arm_deadline,
    check_deadline,
    disarm_deadline,
    hang_until_cancelled,
)

__all__ = [
    "GovernorConfig",
    "Governor",
    "as_governor",
    "HostMemoryGovernor",
    "ScopedLedger",
    "ChunkTimeout",
    "HeartbeatLease",
    "ChunkCorruption",
    "crc32_matrix",
    "crc32_bytes",
]


@dataclass(frozen=True)
class GovernorConfig:
    """Declarative limits the governor enforces.  All default to off.

    ``deadline_seconds``
        per-chunk wall-clock budget.  In-process backends cancel
        cooperatively at kernel phase boundaries; the process backend
        kills the worker outright once a claimed chunk exceeds it.
    ``heartbeat_interval``
        process backend only: workers beat a shared-memory counter every
        ``interval / 2`` seconds, and a worker silent for longer than
        ``2 x interval`` while holding a chunk is declared hung and
        killed — catching stalls well before a generous deadline would.
    ``host_mem_budget_bytes``
        ceiling on in-flight chunk estimates plus stored chunk bytes;
        dispatch blocks (and the chunk store spills) under pressure.
    ``device_pool_bytes``
        device memory pool available to one chunk's working set
        (analysis + symbolic intermediates + output).  A chunk whose
        upper-bound footprint exceeds it is re-split by row halving
        before/after dispatch until its pieces fit.
    ``max_resplit_depth``
        halving levels a single chunk may undergo (2^depth sub-chunks)
        before a genuine :class:`~repro.device.memory.DeviceOutOfMemory`
        propagates.
    """

    deadline_seconds: Optional[float] = None
    heartbeat_interval: Optional[float] = None
    host_mem_budget_bytes: Optional[int] = None
    device_pool_bytes: Optional[int] = None
    max_resplit_depth: int = 8

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be > 0")
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if (self.host_mem_budget_bytes is not None
                and self.host_mem_budget_bytes < 1):
            raise ValueError("host_mem_budget_bytes must be >= 1")
        if self.device_pool_bytes is not None and self.device_pool_bytes < 1:
            raise ValueError("device_pool_bytes must be >= 1")
        if self.max_resplit_depth < 1:
            raise ValueError("max_resplit_depth must be >= 1")

    @property
    def enabled(self) -> bool:
        return any(v is not None for v in (
            self.deadline_seconds, self.heartbeat_interval,
            self.host_mem_budget_bytes, self.device_pool_bytes,
        ))


class Governor:
    """Per-run runtime enforcing one :class:`GovernorConfig`.

    Holds the mutable admission ledger, so one instance governs exactly
    one run at a time; construct a fresh one (or reuse sequentially)
    rather than sharing across concurrent runs.
    """

    def __init__(self, config: Optional[GovernorConfig] = None, *,
                 tracer=None, hostmem=None) -> None:
        self.config = config if config is not None else GovernorConfig()
        #: ``hostmem=`` injects an externally owned ledger — typically a
        #: :meth:`HostMemoryGovernor.scoped` view, so N per-shard
        #: governors enforce one shared node budget (see
        #: :mod:`repro.distributed.shard`).  Without it the governor
        #: builds a private ledger from its own config.
        self.hostmem = hostmem
        if hostmem is None and self.config.host_mem_budget_bytes is not None:
            self.hostmem = HostMemoryGovernor(
                self.config.host_mem_budget_bytes, tracer=tracer)

    # convenience accessors the engine/backends read directly
    @property
    def deadline_seconds(self) -> Optional[float]:
        return self.config.deadline_seconds

    @property
    def heartbeat_interval(self) -> Optional[float]:
        return self.config.heartbeat_interval

    @property
    def device_pool_bytes(self) -> Optional[int]:
        return self.config.device_pool_bytes

    @property
    def max_resplit_depth(self) -> int:
        return self.config.max_resplit_depth

    def bind_tracer(self, tracer) -> None:
        if self.hostmem is not None:
            self.hostmem.bind_tracer(tracer)

    def attach_store(self, store) -> None:
        if self.hostmem is not None:
            self.hostmem.attach_store(store)

    def device_fits(self, rows: int, products: int) -> bool:
        """Whether one chunk's upper-bound footprint fits the device pool."""
        if self.config.device_pool_bytes is None:
            return True
        from ..memcheck import chunk_device_bytes  # deferred: import cost

        return (chunk_device_bytes(rows, products)
                <= self.config.device_pool_bytes)

    def device_fits_bytes(self, nbytes: int) -> bool:
        """Whether a pre-computed chunk footprint (e.g. the sampled
        estimate from :mod:`repro.spgemm.estimate`) fits the pool."""
        if self.config.device_pool_bytes is None:
            return True
        return nbytes <= self.config.device_pool_bytes


def as_governor(
    governor: Union[None, GovernorConfig, Governor]
) -> Optional[Governor]:
    """Normalize a governor argument; ``None`` stays ``None`` (inert)."""
    if governor is None or isinstance(governor, Governor):
        return governor
    if isinstance(governor, GovernorConfig):
        return Governor(governor)
    raise TypeError(
        f"governor must be a Governor or GovernorConfig, got {type(governor)!r}"
    )
