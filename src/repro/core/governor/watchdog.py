"""Deadline watchdog: per-chunk wall-clock budgets and hang detection.

Two cooperating mechanisms, one per execution model:

**In-process chunks** (serial / thread backends) cannot be preempted —
a lane thread stuck inside a numpy kernel holds no cancellation point.
The watchdog therefore uses *cooperative* deadlines: the engine arms a
chunk's deadline in a module-level registry before running its kernel
and the stage hook (the same hook the fault injector rides) calls
:func:`check_deadline` at every kernel phase boundary, raising
:class:`ChunkTimeout` once the budget is exceeded.  The injected
``hang`` fault action polls the registry from inside its sleep loop, so
a simulated hang is cancellable at millisecond granularity.  A *native*
hang inside one numpy call is only detectable at the next phase
boundary — preemption of arbitrary code needs the process backend.

**Worker-process chunks** (process backend) are preemptible: the parent
kills a hung worker outright.  Detection combines two signals read from
the shared-memory claims array (:mod:`repro.core.executor.procpool`):

* the *claim* slot says which chunk the worker holds and since when —
  exceeding the per-chunk ``deadline`` marks the worker hung;
* a *heartbeat* counter slot, incremented by a daemon thread in the
  worker every ``heartbeat_interval / 2`` seconds — a counter unchanged
  for longer than ``2 x heartbeat_interval`` marks the worker stalled
  (stopped, swapping, livelocked) even before its deadline expires.

Either way the worker is SIGKILLed, the chunk surfaces to the engine as
a :class:`ChunkTimeout` (retryable — the retry policy rules on the
requeue), and the pool respawns a replacement under the crash budget.

The registry is module-level on purpose: the fault injector fires deep
inside kernels with no handle on the engine.  Chunk ids are only unique
*within* a run, though — and the job server executes many runs
concurrently in one process — so entries are keyed by ``(executing
thread ident, chunk id)``.  Arming, checking, and disarming all happen
on the thread running the chunk's kernel (``run_chunk_local`` arms
immediately before the kernel call on the same lane thread that
executes it), so the thread ident disambiguates runs without any handle
being passed through the kernel stack.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

__all__ = [
    "ChunkTimeout",
    "HeartbeatLease",
    "arm_deadline",
    "disarm_deadline",
    "check_deadline",
    "hang_until_cancelled",
]


class ChunkTimeout(RuntimeError):
    """A chunk exceeded its wall-clock deadline (or its worker hung).

    An ``Exception`` — the default retry predicate classifies it as
    retryable, so a policy with attempts left requeues the chunk.
    """

    def __init__(self, chunk_id: int, *, attempt: Optional[int] = None,
                 deadline: Optional[float] = None,
                 reason: str = "deadline exceeded") -> None:
        msg = f"chunk {chunk_id} timed out: {reason}"
        if deadline is not None:
            msg += f" (deadline {deadline:.3g}s)"
        if attempt is not None:
            msg += f" [attempt {attempt}]"
        super().__init__(msg)
        self.chunk_id = chunk_id
        self.attempt = attempt
        self.deadline = deadline


_lock = threading.Lock()
#: (executing thread ident, chunk id) -> (absolute monotonic deadline,
#: configured budget seconds).  Thread-keyed so concurrent runs sharing
#: chunk ids (the job server) cannot trip each other's deadlines.
_armed: Dict[tuple, tuple] = {}


def _key(chunk_id: int) -> tuple:
    return (threading.get_ident(), chunk_id)


def arm_deadline(chunk_id: int, deadline_seconds: float) -> None:
    """Start chunk ``chunk_id``'s wall-clock budget now (on this thread)."""
    with _lock:
        _armed[_key(chunk_id)] = (time.monotonic() + deadline_seconds,
                                  deadline_seconds)


def disarm_deadline(chunk_id: int) -> None:
    with _lock:
        _armed.pop(_key(chunk_id), None)


def check_deadline(chunk_id: int) -> None:
    """Raise :class:`ChunkTimeout` if the chunk's armed deadline passed.

    A no-op for unarmed chunks (workers never arm — the parent-side
    watchdog preempts them instead)."""
    with _lock:
        entry = _armed.get(_key(chunk_id))
    if entry is not None and time.monotonic() > entry[0]:
        raise ChunkTimeout(chunk_id, deadline=entry[1])


class HeartbeatLease:
    """Liveness lease over pushed heartbeats — the shared-memory
    heartbeat slot of the process-backend claims array, generalized to
    peers the parent cannot share memory with (remote shard workers
    over a socket).

    The watched peer *pushes* beats (any observed activity counts — a
    heartbeat frame, a result chunk); the watcher calls :meth:`beat` on
    each and :meth:`expired` whenever its read polls time out.  A lease
    silent for longer than ``interval x grace`` is expired: the peer is
    presumed stalled (stopped, swapping, wedged mid-send) even though
    its connection may still be open — the same "counter unchanged for
    2x the interval" rule the in-process watchdog applies to worker
    heartbeat slots.

    ``beat`` optionally takes the peer's monotonically increasing
    counter; a regression (a stale frame from before a reconnect)
    renews the lease — bytes did arrive — but is counted in
    ``regressions`` for diagnostics.  Not thread-safe: one lease
    belongs to the single thread driving its peer's connection.
    """

    def __init__(self, interval_seconds: float, *, grace: float = 3.0) -> None:
        if interval_seconds <= 0:
            raise ValueError("heartbeat interval must be > 0")
        if grace < 1.0:
            raise ValueError("grace must be >= 1 (a fraction of the "
                             "interval cannot distinguish jitter from death)")
        self.interval_seconds = float(interval_seconds)
        self.deadline_seconds = float(interval_seconds) * float(grace)
        self.beats = 0
        self.regressions = 0
        self._counter = 0
        self._last = time.monotonic()

    def beat(self, counter: Optional[int] = None) -> None:
        """Renew the lease (peer activity observed now)."""
        self._last = time.monotonic()
        self.beats += 1
        if counter is not None:
            if counter <= self._counter:
                self.regressions += 1
            self._counter = max(self._counter, int(counter))

    def remaining(self, now: Optional[float] = None) -> float:
        """Seconds of lease left (negative once expired)."""
        now = time.monotonic() if now is None else now
        return self._last + self.deadline_seconds - now

    def expired(self, now: Optional[float] = None) -> bool:
        return self.remaining(now) < 0

    def reset(self) -> None:
        """Re-arm after a reconnect (the silent gap was the *old*
        connection's; the new one starts with a full lease)."""
        self._last = time.monotonic()


def hang_until_cancelled(chunk_id: int, cap_seconds: float,
                         poll_seconds: float = 0.005) -> None:
    """The ``hang`` fault action: stall until cancelled (or the cap).

    In-process the stall ends with a :class:`ChunkTimeout` as soon as
    the chunk's armed deadline passes; in a worker process nothing is
    armed, so the worker sleeps until the parent watchdog kills it.
    ``cap_seconds`` is a failsafe so a hang injected without any
    watchdog configured cannot stall a run forever.
    """
    end = time.monotonic() + cap_seconds
    while True:
        check_deadline(chunk_id)
        remaining = end - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(poll_seconds, remaining))
