"""Parallel chunk execution engine: the threaded out-of-core pipeline.

The paper's throughput comes from *overlap*: two device streams, double
chunk buffers, and flops-descending chunk order keep every resource busy
(Sections III.B, IV.C).  This module is the host-side realization of that
pipeline: output chunks are independent SpGEMMs, so a thread pool runs
them concurrently — the numpy accumulators release the GIL inside their
heavy vectorized loops — while a *bounded in-flight window* mirrors the
two-device-buffer backpressure: at most ``window`` chunks are admitted at
once, so peak intermediate memory stays proportional to the window, not
the grid.

Guarantees:

* **Bit-identical output.**  Chunks touch disjoint output regions and each
  chunk's kernel is deterministic, so any worker count (and any dispatch
  order) produces exactly the serial result.
* **Deterministic profiles.**  Chunk statistics are reassembled in chunk-id
  order regardless of completion order; only the ``measured_seconds``
  wall-clock fields vary run to run.
* **Bounded memory.**  In-flight chunk outputs are capped by the window;
  inside each kernel the hash accumulator tiles its product expansion
  (:mod:`repro.spgemm.accumulators`).

Per-row-panel :class:`~repro.sparse.ops.RowSliceCache` instances are
shared by all chunks of one row panel, so the R x C grid stops re-slicing
A for row groups that repeat across column panels.

Hybrid execution (paper Algorithm 4) maps onto *lanes*: the flop-densest
chunk prefix — the "GPU" set — gets one slice of the pool, the remainder
— the "CPU" set — the other, and both lanes drain concurrently.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..observability import as_tracer
from ..sparse.formats import CSRMatrix
from ..sparse.ops import RowSliceCache
from ..sparse.partition import PanelSet, partition_columns, partition_rows
from ..spgemm.twophase import TwoPhaseResult, spgemm_twophase
from .chunks import ChunkGrid, ChunkProfile, ChunkStats, chunk_flops, csr_bytes

__all__ = [
    "default_window",
    "flops_desc_order",
    "split_by_flop_ratio",
    "split_workers",
    "plan_hybrid_lanes",
    "execute_chunk_grid",
]

#: per worker, mirror the paper's two device chunk buffers: one chunk in
#: compute, one queued — so the default in-flight window is 2 x workers
BUFFERS_PER_WORKER = 2


def default_window(workers: int) -> int:
    """Default bounded in-flight window (two "device buffers" per worker)."""
    return max(1, BUFFERS_PER_WORKER * max(workers, 1))


def flops_desc_order(flops_flat: np.ndarray) -> List[int]:
    """Chunk ids by decreasing flops, ties broken by id (Alg. 4 line 14).

    Unlike :meth:`ChunkProfile.order_by_flops_desc` this needs no executed
    profile — chunk flops are computable before any kernel runs, which is
    what lets the executor dispatch heavy chunks first on a cold start.
    """
    flops_flat = np.asarray(flops_flat).ravel()
    return sorted(range(flops_flat.size), key=lambda i: (-int(flops_flat[i]), i))


def split_by_flop_ratio(
    flops_flat: np.ndarray, ratio: float
) -> Tuple[List[int], List[int]]:
    """Algorithm 4's pre-execution split: the flop-densest prefix holding at
    least ``ratio`` of total flops (the "GPU" set, in flops-descending
    order) and the remainder (the "CPU" set).

    Empty work (``total flops == 0``) has defined semantics: no chunk is
    flop-dense, so the "GPU" prefix is empty and *everything* goes to the
    "CPU" set, for any ratio — an all-zero grid never produces a spurious
    split.
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("ratio must be in [0, 1]")
    order = flops_desc_order(flops_flat)
    flops_flat = np.asarray(flops_flat).ravel()
    total = int(flops_flat.sum())
    if ratio == 0.0 or total == 0:
        return [], order
    acc = 0
    for n, cid in enumerate(order):
        acc += int(flops_flat[cid])
        if acc / total >= ratio:
            return order[: n + 1], order[n + 1 :]
    return order, []


def split_workers(workers: int, ratio: float, *, both_nonempty: bool) -> Tuple[int, int]:
    """Split the thread pool between the two hybrid lanes per the flop
    ratio, keeping at least one worker per non-empty lane.

    A single-worker pool cannot serve two concurrent lanes without 2x
    oversubscription, so ``workers == 1`` with both lanes non-empty
    returns ``(1, 0)``: the second lane gets no concurrent share and the
    caller must serialize the lanes (as :func:`plan_hybrid_lanes` does).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not both_nonempty:
        return workers, workers  # single lane gets the whole pool
    if workers == 1:
        return 1, 0
    first = int(round(workers * ratio))
    first = min(max(first, 1), workers - 1)
    return first, workers - first


def plan_hybrid_lanes(
    flops_flat: np.ndarray, workers: int, ratio: float
) -> List[Tuple[List[int], int, str]]:
    """Plan Algorithm 4's hybrid lanes: ``[(chunk_ids, workers, name), ...]``.

    The flop-densest prefix holding ``ratio`` of the flops forms the
    "gpu" lane, the remainder the "cpu" lane, and the worker pool is
    split between them.  Degenerate cases collapse to one lane: an empty
    split (all flops on one side, or an all-zero grid) hands the whole
    pool to the single non-empty lane, and a single worker *serializes*
    the two chunk sets (gpu prefix first) instead of oversubscribing one
    worker with two concurrent lanes.
    """
    gpu_ids, cpu_ids = split_by_flop_ratio(flops_flat, ratio)
    if workers == 1 and gpu_ids and cpu_ids:
        return [(list(gpu_ids) + list(cpu_ids), 1, "gpu+cpu")]
    gpu_w, cpu_w = split_workers(
        workers, ratio, both_nonempty=bool(gpu_ids and cpu_ids)
    )
    return [
        (list(ids), w, name)
        for ids, w, name in ((gpu_ids, gpu_w, "gpu"), (cpu_ids, cpu_w, "cpu"))
        if ids
    ]


def _run_lane(
    order: Sequence[int],
    workers: int,
    window: int,
    run_chunk: Callable[[int], Tuple[int, TwoPhaseResult, float]],
    on_done: Callable[[int, TwoPhaseResult, float], None],
    *,
    lane: str = "lane0",
    tracer=None,
) -> None:
    """Drain one lane's chunks through a bounded-window worker pool.

    ``on_done`` is invoked from this (lane) thread only — completion
    handling is serialized per lane; cross-lane races are handled by the
    caller's lock.  ``tracer`` records a ``queue_wait`` span per chunk
    (submit-to-start latency on the worker's track) and samples the
    lane's queue depth / in-flight occupancy as gauges.
    """
    tracer = as_tracer(tracer)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if workers <= 1:
        for i, cid in enumerate(order):
            if tracer.enabled:
                tracer.gauge(f"lane[{lane}]",
                             queue_depth=len(order) - i - 1, in_flight=1)
            on_done(*run_chunk(cid))
        return
    queue = list(order)
    pos = 0
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix=f"{lane}-w"
    ) as pool:
        in_flight = set()

        def submit(cid: int):
            if not tracer.enabled:
                return pool.submit(run_chunk, cid)
            t_submit = tracer.now()

            def traced():
                tracer.add_span(f"queue_wait[{cid}]", "queue",
                                t_submit, tracer.now(), chunk=cid, lane=lane)
                return run_chunk(cid)

            return pool.submit(traced)

        try:
            while pos < len(queue) or in_flight:
                while pos < len(queue) and len(in_flight) < window:
                    in_flight.add(submit(queue[pos]))
                    pos += 1
                if tracer.enabled:
                    tracer.gauge(f"lane[{lane}]",
                                 queue_depth=len(queue) - pos,
                                 in_flight=len(in_flight))
                done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
                for fut in done:
                    on_done(*fut.result())
        except BaseException:
            for fut in in_flight:
                fut.cancel()
            raise


def execute_chunk_grid(
    a: CSRMatrix,
    b: CSRMatrix,
    grid: ChunkGrid,
    *,
    workers: int = 1,
    window: Optional[int] = None,
    keep_outputs: bool = False,
    chunk_sink=None,
    name: str = "",
    lanes: Optional[Sequence[Tuple[Sequence[int], int]]] = None,
    lane_names: Optional[Sequence[str]] = None,
    tracer=None,
) -> Tuple[ChunkProfile, Optional[List[List[CSRMatrix]]]]:
    """Execute every chunk of ``C = A x B`` and profile it, concurrently.

    Parameters
    ----------
    workers:
        Thread count.  ``1`` runs the chunks inline in natural (row-major)
        order — the legacy serial behaviour; ``> 1`` dispatches them
        flops-descending through a bounded-window thread pool.
    window:
        Max chunks in flight (default ``2 x workers``, the two-buffer
        analog).  Bounds peak memory held by unconsumed chunk outputs.
        Must be >= 1 when given: ``0`` would admit nothing (and silently
        falling back to the default hid exactly that), and a negative
        window would spin the dispatch loop forever.
    keep_outputs / chunk_sink:
        As in :func:`repro.core.chunks.profile_chunks`; sink calls are
        serialized under a lock, in completion order.
    lanes:
        Optional explicit ``[(chunk_ids, lane_workers), ...]`` partition of
        the grid (the hybrid split).  Lanes drain concurrently, each with
        its own bounded window and >= 1 workers; every chunk id must
        appear exactly once.  ``lane_names`` labels the lanes in traces
        (default ``lane0``, ``lane1``, ...).
    tracer:
        A :class:`repro.observability.Tracer` recording the full chunk
        lifecycle — queue wait, analysis/symbolic/numeric phases, sink
        writes — plus lane queue-depth/occupancy and slice-cache hit/miss
        gauges.  Default is the no-op null tracer; tracing never changes
        results (bit-identical on or off).

    Returns ``(profile, outputs_or_None)``.  The profile's chunks are in
    chunk-id order with per-chunk measured wall times filled in, and the
    profile records the end-to-end measured wall time of the whole grid.
    """
    tracer = as_tracer(tracer)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if window is not None and window < 1:
        raise ValueError(
            f"window must be >= 1 (or None for the default), got {window}"
        )
    row_panels: PanelSet = partition_rows(a, grid.num_row_panels)
    col_panels: PanelSet = partition_columns(b, grid.num_col_panels)
    if not np.array_equal(row_panels.boundaries, grid.row_bounds) or not np.array_equal(
        col_panels.boundaries, grid.col_bounds
    ):
        raise ValueError("grid boundaries disagree with panel partitioning")

    num_chunks = grid.num_chunks
    if lanes is None:
        if workers <= 1:
            lanes = [(list(range(num_chunks)), 1)]
        else:
            order = flops_desc_order(chunk_flops(a, b, grid))
            lanes = [(order, workers)]
    else:
        seen = sorted(cid for ids, _ in lanes for cid in ids)
        if seen != list(range(num_chunks)):
            raise ValueError("lanes must cover every chunk id exactly once")
        bad = [w for _, w in lanes if w < 1]
        if bad:
            raise ValueError(
                f"every lane needs >= 1 workers, got {bad}; a zero-worker "
                "lane means the caller should have serialized the lanes "
                "(see plan_hybrid_lanes)"
            )
    if lane_names is None:
        lane_names = [f"lane{i}" for i in range(len(lanes))]
    elif len(lane_names) != len(lanes):
        raise ValueError("lane_names must match lanes in length")

    # all chunks of one row panel share one A-slice cache
    caches = [RowSliceCache(row_panels[rp]) for rp in range(grid.num_row_panels)]
    a_panel_bytes = [
        csr_bytes(row_panels[rp].n_rows, row_panels[rp].nnz)
        for rp in range(grid.num_row_panels)
    ]
    b_panel_bytes = [
        csr_bytes(col_panels[cp].n_rows, col_panels[cp].nnz)
        for cp in range(grid.num_col_panels)
    ]

    stats_by_id: List[Optional[ChunkStats]] = [None] * num_chunks
    outputs: Optional[List[List[Optional[CSRMatrix]]]] = None
    if keep_outputs:
        outputs = [
            [None] * grid.num_col_panels for _ in range(grid.num_row_panels)
        ]
    sink_lock = threading.Lock()

    def run_chunk(cid: int) -> Tuple[int, TwoPhaseResult, float]:
        rp, cp = grid.panel_of(cid)
        t0 = time.perf_counter()
        result = spgemm_twophase(
            row_panels[rp], col_panels[cp], slice_cache=caches[rp],
            tracer=tracer, trace_label=str(cid),
        )
        elapsed = time.perf_counter() - t0
        if tracer.enabled:
            # cumulative per-row-panel slice-cache behaviour, sampled at
            # each chunk completion (hit/miss counter tracks in the trace)
            tracer.gauge(f"slice_cache[{rp}]",
                         hits=caches[rp].hits, misses=caches[rp].misses)
        return cid, result, elapsed

    def on_done(cid: int, result: TwoPhaseResult, elapsed: float) -> None:
        rp, cp = grid.panel_of(cid)
        st = result.stats
        stats_by_id[cid] = ChunkStats(
            chunk_id=cid,
            row_panel=rp,
            col_panel=cp,
            rows=row_panels[rp].n_rows,
            width=col_panels[cp].n_cols,
            flops=st.flops,
            a_panel_bytes=a_panel_bytes[rp],
            b_panel_bytes=b_panel_bytes[cp],
            input_nnz=st.input_nnz,
            nnz_out=st.nnz_out,
            output_bytes=st.output_bytes,
            analysis_bytes=st.analysis_bytes,
            symbolic_bytes=st.symbolic_bytes,
            symbolic_kernels=st.symbolic_kernels,
            numeric_kernels=st.numeric_kernels,
            measured_seconds=elapsed,
        )
        if chunk_sink is not None or keep_outputs:
            with tracer.span(f"sink[{cid}]", "sink", chunk=cid,
                             bytes=st.output_bytes), sink_lock:
                if chunk_sink is not None:
                    chunk_sink(rp, cp, result.matrix)
                if keep_outputs:
                    outputs[rp][cp] = result.matrix

    def lane_window(lane_workers: int) -> int:
        return default_window(lane_workers) if window is None else window

    wall_start = time.perf_counter()
    if len(lanes) == 1:
        ids, lane_workers = lanes[0]
        _run_lane(
            ids, lane_workers, lane_window(lane_workers),
            run_chunk, on_done, lane=lane_names[0], tracer=tracer,
        )
    else:
        lane_errors: List[BaseException] = []

        def lane_main(ids, lane_workers, lane_name):
            try:
                _run_lane(
                    ids, lane_workers, lane_window(lane_workers),
                    run_chunk, on_done, lane=lane_name, tracer=tracer,
                )
            except BaseException as exc:  # propagate to the caller thread
                lane_errors.append(exc)

        threads = [
            threading.Thread(
                target=lane_main, args=(ids, lane_workers, lane_names[i]),
                name=lane_names[i],  # inline lane spans land on this track
            )
            for i, (ids, lane_workers) in enumerate(lanes)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if lane_errors:
            raise lane_errors[0]
    wall = time.perf_counter() - wall_start

    missing = [i for i, s in enumerate(stats_by_id) if s is None]
    if missing:
        raise RuntimeError(f"chunks never completed: {missing[:4]}...")
    profile = ChunkProfile(
        grid=grid,
        chunks=tuple(stats_by_id),
        name=name,
        measured_wall_seconds=wall,
    )
    return profile, outputs
