"""Compatibility shim: the chunk executor moved to ``repro.core.executor``.

The original single-file threaded executor grew a pluggable backend
layer (serial / thread / process) and now lives in the
:mod:`repro.core.executor` package.  This module re-exports the public
names so existing imports keep working.
"""

from .executor import (  # noqa: F401
    BUFFERS_PER_WORKER,
    EXECUTOR_BACKENDS,
    WorkerCrashed,
    default_window,
    execute_chunk_grid,
    flops_desc_order,
    plan_hybrid_lanes,
    resolve_backend_name,
    split_by_flop_ratio,
    split_workers,
)

__all__ = [
    "BUFFERS_PER_WORKER",
    "EXECUTOR_BACKENDS",
    "WorkerCrashed",
    "default_window",
    "execute_chunk_grid",
    "flops_desc_order",
    "plan_hybrid_lanes",
    "resolve_backend_name",
    "split_by_flop_ratio",
    "split_workers",
]
