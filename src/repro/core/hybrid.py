"""Hybrid CPU-GPU work distribution (paper Algorithm 4 and Section III.C).

Chunks are sorted by decreasing flops; the GPU receives the densest prefix
holding at least ``Ratio`` of the total flops, the CPU the rest.  The
paper derives ``Ratio = S / (S + 1)`` from the expected GPU-over-CPU
speedup ``S`` and finds a fixed 65 % works for every matrix on its node
(Table III / Fig. 10).

The *reordering* knob reproduces Fig. 9: with ``reorder=False`` chunks are
taken in natural (row-major) order until the flop ratio is reached — the
"default implementation" the paper beats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..device.engine import SimEngine
from ..device.kernels import CostModel
from .chunks import ChunkProfile
from .schedule import add_cpu_chunks, build_async_schedule

__all__ = [
    "DEFAULT_RATIO",
    "HybridAssignment",
    "assign_chunks",
    "assign_first_n",
    "build_hybrid_engine",
    "best_gpu_chunk_count",
]

#: the paper's fixed GPU flop share ("a fixed value of 65% can achieve
#: good performance for all of our input matrices")
DEFAULT_RATIO = 0.65


@dataclass(frozen=True)
class HybridAssignment:
    """Which chunks go where, and in what order the GPU runs its share."""

    gpu_chunks: Tuple[int, ...]
    cpu_chunks: Tuple[int, ...]
    ratio: float
    reordered: bool
    gpu_flops: int
    total_flops: int

    @property
    def num_gpu(self) -> int:
        return len(self.gpu_chunks)

    @property
    def gpu_flop_share(self) -> float:
        return self.gpu_flops / self.total_flops if self.total_flops else 0.0


def _prefix_until_ratio(
    profile: ChunkProfile, order: Sequence[int], ratio: float
) -> int:
    """Algorithm 4 lines 16-24: smallest prefix reaching the flop ratio."""
    total = profile.total_flops
    acc = 0
    for n, cid in enumerate(order):
        acc += profile.chunks[cid].flops
        if total == 0 or acc / total >= ratio:
            return n + 1
    return len(order)


def assign_chunks(
    profile: ChunkProfile, ratio: float = DEFAULT_RATIO, *, reorder: bool = True
) -> HybridAssignment:
    """Split chunks between GPU and CPU at the given flop ratio."""
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("ratio must be in [0, 1]")
    order = profile.order_by_flops_desc() if reorder else profile.natural_order()
    if ratio == 0.0:
        num_gpu = 0
    else:
        num_gpu = _prefix_until_ratio(profile, order, ratio)
    gpu = tuple(order[:num_gpu])
    cpu = tuple(order[num_gpu:])
    return HybridAssignment(
        gpu_chunks=gpu,
        cpu_chunks=cpu,
        ratio=ratio,
        reordered=reorder,
        gpu_flops=sum(profile.chunks[c].flops for c in gpu),
        total_flops=profile.total_flops,
    )


def assign_first_n(profile: ChunkProfile, num_gpu: int, *, reorder: bool = True) -> HybridAssignment:
    """Assignment by explicit GPU chunk count (Table III's exhaustive search)."""
    order = profile.order_by_flops_desc() if reorder else profile.natural_order()
    if not 0 <= num_gpu <= len(order):
        raise ValueError(f"num_gpu must be in [0, {len(order)}]")
    gpu = tuple(order[:num_gpu])
    cpu = tuple(order[num_gpu:])
    gpu_flops = sum(profile.chunks[c].flops for c in gpu)
    total = profile.total_flops
    return HybridAssignment(
        gpu_chunks=gpu,
        cpu_chunks=cpu,
        ratio=gpu_flops / total if total else 0.0,
        reordered=reorder,
        gpu_flops=gpu_flops,
        total_flops=total,
    )


def build_hybrid_engine(
    profile: ChunkProfile,
    cm: CostModel,
    assignment: HybridAssignment,
    **async_kwargs,
) -> SimEngine:
    """One engine running both device queues concurrently.

    The GPU's chunks go through the full asynchronous pipeline; the CPU's
    chunks queue on the ``cpu`` resource.  The makespan is the later of
    the two drains — a balanced assignment makes them finish together.
    """
    if assignment.gpu_chunks:
        eng = build_async_schedule(
            profile, cm, order=assignment.gpu_chunks, **async_kwargs
        )
    else:
        from .schedule import new_engine

        eng = new_engine()
    add_cpu_chunks(eng, profile, cm, assignment.cpu_chunks)
    return eng


def best_gpu_chunk_count(
    profile: ChunkProfile,
    cm: CostModel,
    *,
    reorder: bool = True,
) -> Tuple[int, List[float]]:
    """Exhaustive search over the GPU chunk count (paper Table III).

    Simulates every possible prefix length and returns
    ``(argmin, makespans)``.  Ties go to the smaller count.
    """
    times: List[float] = []
    for n in range(len(profile.chunks) + 1):
        assignment = assign_first_n(profile, n, reorder=reorder)
        eng = build_hybrid_engine(profile, cm, assignment)
        times.append(eng.run().makespan())
    best = min(range(len(times)), key=lambda i: (times[i], i))
    return best, times
