"""Pipeline tracing and observability.

One :class:`Tracer` collects spans (queue wait, slice-cache activity,
symbolic, numeric, sink/store writes) and gauges (lane queue depth,
in-flight window occupancy, chunk-store bytes) from every layer of the
out-of-core pipeline; :mod:`~repro.observability.chrome` exports the
result as Chrome-trace-event JSON loadable in ``chrome://tracing`` /
Perfetto — with simulated schedules as a sibling process for
side-by-side comparison — and :mod:`~repro.observability.summary`
reduces it to per-lane utilization and the critical path.

Tracing defaults off (:data:`NULL_TRACER`): instrumented paths are
no-ops that allocate nothing and never change numeric results.
"""

from .chrome import (
    MEASURED_PID,
    SIMULATED_PID,
    multi_tracer_events,
    timeline_events,
    tracer_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from .summary import (
    COMPUTE_CATS,
    LaneUsage,
    category_breakdown,
    critical_path,
    lane_utilization,
    render_summary,
)
from .tracer import NULL_TRACER, GaugeSample, NullTracer, Span, Tracer, as_tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "GaugeSample",
    "as_tracer",
    "MEASURED_PID",
    "SIMULATED_PID",
    "tracer_events",
    "multi_tracer_events",
    "timeline_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "COMPUTE_CATS",
    "LaneUsage",
    "lane_utilization",
    "category_breakdown",
    "critical_path",
    "render_summary",
]
