"""Per-lane utilization and critical-path analysis of a traced run.

The GPU SpGEMM literature (Liu & Vinter's heterogeneous framework,
OpSparse) attributes performance to per-phase breakdowns — symbolic vs.
numeric vs. transfer.  This module computes the host-side analog from a
:class:`~repro.observability.tracer.Tracer`:

* per-lane busy/utilization figures over the *compute* categories, so an
  idle hybrid lane is visible at a glance;
* a per-category time breakdown (queue wait vs. symbolic vs. numeric vs.
  sink/store);
* the *critical path*: the lane whose last span finishes at the makespan,
  with its busy time and idle gap — the lower bound any further
  scheduling work has to attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .tracer import Span, Tracer

__all__ = [
    "COMPUTE_CATS",
    "LaneUsage",
    "lane_utilization",
    "category_breakdown",
    "critical_path",
    "render_summary",
]

#: span categories that represent actual kernel work (utilization
#: numerator); queue wait and store traffic are overhead categories
COMPUTE_CATS = ("analysis", "symbolic", "numeric")


def _merge(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    if not intervals:
        return []
    intervals.sort()
    out = [intervals[0]]
    for lo, hi in intervals[1:]:
        if lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


@dataclass(frozen=True)
class LaneUsage:
    """Busy/utilization figures of one lane (thread track)."""

    lane: str
    busy_seconds: float        # union of compute spans
    span_count: int
    first_start: float
    last_end: float

    def utilization(self, wall: float) -> float:
        return self.busy_seconds / wall if wall > 0 else 0.0


def lane_utilization(tracer: Tracer,
                     cats: Sequence[str] = COMPUTE_CATS) -> List[LaneUsage]:
    """Busy time per lane over the given categories, sorted by lane name."""
    by_lane: Dict[str, List[Span]] = {}
    for s in tracer.spans:
        if s.cat in cats:
            by_lane.setdefault(s.lane, []).append(s)
    usages = []
    for lane, spans in sorted(by_lane.items()):
        merged = _merge([(s.start, s.end) for s in spans])
        usages.append(LaneUsage(
            lane=lane,
            busy_seconds=sum(hi - lo for lo, hi in merged),
            span_count=len(spans),
            first_start=min(s.start for s in spans),
            last_end=max(s.end for s in spans),
        ))
    return usages


def category_breakdown(tracer: Tracer) -> Dict[str, float]:
    """Total span seconds per category (summed across lanes — CPU work,
    not wall time), sorted descending."""
    totals: Dict[str, float] = {}
    for s in tracer.spans:
        totals[s.cat] = totals.get(s.cat, 0.0) + s.duration
    return dict(sorted(totals.items(), key=lambda kv: -kv[1]))


def critical_path(tracer: Tracer) -> dict:
    """The lane finishing last and how much of the makespan it was busy.

    With disjoint-output chunks there are no cross-chunk dependencies, so
    the run's makespan is set by whichever lane drains last; its busy
    time is the irreducible work on the critical path and the gap is
    schedulable slack (queue starvation, window stalls, store latency).
    """
    usages = lane_utilization(tracer)
    wall = tracer.wall_seconds()
    if not usages:
        return {"wall_seconds": wall, "lane": None,
                "busy_seconds": 0.0, "idle_seconds": wall}
    crit = max(usages, key=lambda u: u.last_end)
    return {
        "wall_seconds": wall,
        "lane": crit.lane,
        "busy_seconds": crit.busy_seconds,
        "idle_seconds": max(wall - crit.busy_seconds, 0.0),
    }


def render_summary(tracer: Tracer) -> str:
    """Human-readable utilization + breakdown + critical-path report."""
    wall = tracer.wall_seconds()
    lines = [f"traced wall time: {wall * 1e3:.3f} ms"]

    usages = lane_utilization(tracer)
    if usages:
        lines.append(f"{'lane':<24} {'busy ms':>10} {'util %':>8} {'spans':>6}")
        for u in usages:
            lines.append(
                f"{u.lane:<24} {u.busy_seconds * 1e3:>10.3f} "
                f"{u.utilization(wall) * 100:>7.1f}% {u.span_count:>6}"
            )

    breakdown = category_breakdown(tracer)
    if breakdown:
        lines.append("time by category (summed across lanes):")
        for cat, secs in breakdown.items():
            lines.append(f"  {cat:<14} {secs * 1e3:>10.3f} ms")

    crit = critical_path(tracer)
    if crit["lane"] is not None:
        lines.append(
            f"critical path: lane {crit['lane']} "
            f"(busy {crit['busy_seconds'] * 1e3:.3f} ms, "
            f"idle {crit['idle_seconds'] * 1e3:.3f} ms of "
            f"{crit['wall_seconds'] * 1e3:.3f} ms)"
        )
    return "\n".join(lines)
