"""Chrome-trace-event export of tracer and simulated timelines.

The `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`__
is what ``chrome://tracing`` and https://ui.perfetto.dev load.  We emit:

* ``"X"`` complete events for spans (``ts``/``dur`` in microseconds);
* ``"C"`` counter events for gauge samples (queue depth, window
  occupancy, store bytes);
* ``"M"`` metadata events naming processes and threads.

Measured runs and simulated schedules are separate *processes* (``pid``)
of one trace, so a real traced execution and the cost model's Fig. 6
timeline can be loaded side by side in one Perfetto window.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .tracer import Tracer

__all__ = [
    "MEASURED_PID",
    "SIMULATED_PID",
    "tracer_events",
    "multi_tracer_events",
    "timeline_events",
    "write_chrome_trace",
    "validate_chrome_trace",
]

MEASURED_PID = 0      # real (host-measured) execution
SIMULATED_PID = 1     # cost-model schedule simulation

#: Chrome event phases we emit
_PHASES = ("X", "C", "M")


def _process_meta(pid: int, name: str) -> dict:
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name}}


def _thread_meta(pid: int, tid: int, name: str) -> dict:
    return {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}}


def tracer_events(tracer: Tracer, *, pid: int = MEASURED_PID,
                  process_name: str = "measured (host)") -> List[dict]:
    """Convert a tracer's spans and gauges to Chrome trace events.

    Lanes (thread names) map to ``tid`` rows in first-appearance order of
    the time-sorted spans, so the exported layout is deterministic for a
    deterministic execution.
    """
    events: List[dict] = [_process_meta(pid, process_name)]
    tids: Dict[str, int] = {}
    for s in sorted(tracer.spans, key=lambda s: (s.start, s.end, s.lane, s.name)):
        if s.lane not in tids:
            tids[s.lane] = len(tids)
            events.append(_thread_meta(pid, tids[s.lane], s.lane))
        events.append({
            "name": s.name,
            "cat": s.cat,
            "ph": "X",
            "ts": s.start * 1e6,
            "dur": max(s.duration, 0.0) * 1e6,
            "pid": pid,
            "tid": tids[s.lane],
            "args": dict(s.args),
        })
    for g in sorted(tracer.gauges, key=lambda g: (g.ts, g.name)):
        events.append({
            "name": g.name,
            "ph": "C",
            "ts": g.ts * 1e6,
            "pid": pid,
            "tid": 0,
            "args": dict(g.values),
        })
    return events


def multi_tracer_events(tracers: Dict[str, Tracer], *,
                        base_pid: int = MEASURED_PID) -> List[dict]:
    """Merge several per-run tracers into one trace, one *process* each.

    The job server gives every concurrent job its own tracer (its own
    t=0 and its own ``stream`` label); merging them onto one pid would
    interleave unrelated jobs on shared thread rows.  Instead each
    stream becomes its own Chrome process named after the stream label,
    so a merged server trace shows jobs side by side — and any single
    job's sub-list is itself a valid trace.  Streams are laid out in
    sorted label order for a deterministic export."""
    events: List[dict] = []
    for i, label in enumerate(sorted(tracers)):
        events.extend(tracer_events(
            tracers[label], pid=base_pid + i,
            process_name=label or "measured (host)",
        ))
    return events


def timeline_events(timeline, *, pid: int = SIMULATED_PID,
                    process_name: str = "simulated (cost model)") -> List[dict]:
    """Convert a simulated :class:`~repro.device.trace.Timeline` to the
    same Chrome format, as its own process: simulated resources (gpu /
    h2d / d2h / cpu) become thread rows."""
    events: List[dict] = [_process_meta(pid, process_name)]
    tids: Dict[str, int] = {}
    for r in sorted(timeline.records, key=lambda r: (r.resource, r.start)):
        if r.resource not in tids:
            tids[r.resource] = len(tids)
            events.append(_thread_meta(pid, tids[r.resource], r.resource))
        events.append({
            "name": r.label,
            "cat": r.stream or "none",
            "ph": "X",
            "ts": r.start * 1e6,
            "dur": max(r.duration, 0.0) * 1e6,
            "pid": pid,
            "tid": tids[r.resource],
            "args": dict(r.meta),
        })
    return events


def write_chrome_trace(path, events: Iterable[dict], *,
                       metadata: Optional[dict] = None) -> None:
    """Write events as a Chrome trace JSON object (``traceEvents`` form,
    loadable by chrome://tracing and Perfetto)."""
    payload = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["metadata"] = metadata
    with open(path, "w") as fh:
        json.dump(payload, fh)
        fh.write("\n")


def validate_chrome_trace(payload) -> List[dict]:
    """Validate a trace payload (object or bare event list) and return the
    event list.  Raises ``ValueError`` on structural problems — used by
    tests to assert exported traces actually load."""
    if isinstance(payload, dict):
        if "traceEvents" not in payload:
            raise ValueError("trace object lacks 'traceEvents'")
        events = payload["traceEvents"]
    else:
        events = payload
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, e in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                raise ValueError(f"event {i} lacks required key {key!r}: {e}")
        if e["ph"] not in _PHASES:
            raise ValueError(f"event {i} has unknown phase {e['ph']!r}")
        if e["ph"] in ("X", "C"):
            if "ts" not in e:
                raise ValueError(f"event {i} ({e['ph']}) lacks 'ts'")
            if e["ts"] < 0:
                raise ValueError(f"event {i} has negative ts {e['ts']}")
        if e["ph"] == "X" and e.get("dur", 0) < 0:
            raise ValueError(f"event {i} has negative dur {e['dur']}")
    json.dumps(events)  # must be serializable as-is
    return events
