"""Structured tracing for the out-of-core pipeline.

A :class:`Tracer` records *spans* (named intervals with a category and a
lane/thread track) and *gauge samples* (named counter time series) from
any thread; the chunk executor, the two-phase kernel, and the chunk
stores all emit into one tracer, so a single trace shows where every
chunk's time went: queue wait, slice-cache behaviour, symbolic, numeric,
sink/store writes, plus lane queue depth and in-flight window occupancy
over time.

The default everywhere is the :data:`NULL_TRACER`, a :class:`NullTracer`
whose every operation is a constant-time no-op on pre-allocated
singletons — instrumented code paths pay one attribute lookup and one
call when tracing is off, allocate nothing, and (crucially) change no
numeric behaviour: outputs are bit-identical with tracing on or off.

Timestamps are ``time.perf_counter()`` seconds relative to the tracer's
creation, so a fresh tracer per run yields a trace starting at t=0.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Span", "GaugeSample", "Tracer", "NullTracer", "NULL_TRACER", "as_tracer"]


@dataclass(frozen=True)
class Span:
    """One named interval on one lane (thread track)."""

    name: str
    cat: str                    # queue / analysis / symbolic / numeric / sink / store / ...
    lane: str                   # thread track the span belongs to
    start: float                # seconds since tracer creation
    end: float
    args: dict = field(default_factory=dict)
    stream: str = ""            # run/job the span belongs to ("" = sole run)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class GaugeSample:
    """One sample of a named counter series (e.g. queue depth)."""

    name: str
    ts: float                   # seconds since tracer creation
    values: Dict[str, float]    # series name -> value
    stream: str = ""            # run/job the sample belongs to ("" = sole run)


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_cat", "_lane", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 lane: Optional[str], args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._lane = lane
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.add_span(
            self._name, self._cat, self._start, self._tracer.now(),
            lane=self._lane, **self._args,
        )


class Tracer:
    """Thread-safe span + gauge recorder.

    All mutating methods may be called concurrently from any thread; the
    lane of a span defaults to the calling thread's name, so worker
    threads of a pool (named per lane by the executor) land on separate
    tracks of the exported trace.
    """

    enabled = True

    def __init__(self, *, stream: str = "") -> None:
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._gauges: List[GaugeSample] = []
        self._counters: Dict[str, Dict[str, float]] = {}
        #: stream label stamped on every span/gauge this tracer records.
        #: Concurrent runs in one process (server jobs) each get their
        #: own tracer labelled with the job id; timestamps are relative
        #: to *this* tracer's creation, so every stream is its own valid
        #: t=0-based timeline instead of an offset into a shared one.
        self.stream = stream

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since tracer creation (the trace's t=0)."""
        return time.perf_counter() - self._t0

    def rebase_raw(self, raw: float) -> float:
        """Convert a raw ``time.perf_counter()`` stamp to trace time.

        ``perf_counter`` reads a system-wide monotonic clock, so raw
        stamps taken in *worker processes* are directly comparable with
        the parent's: the process executor ships spans as raw intervals
        and the parent rebases them onto this tracer's t=0."""
        return raw - self._t0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, cat: str, *, lane: Optional[str] = None, **args):
        """Context manager timing the enclosed block as one span."""
        return _SpanHandle(self, name, cat, lane, args)

    def add_span(self, name: str, cat: str, start: float, end: float, *,
                 lane: Optional[str] = None, **args) -> None:
        """Record a span with explicit timestamps (e.g. queue wait measured
        between submit and start on different threads)."""
        if lane is None:
            lane = threading.current_thread().name
        sp = Span(name=name, cat=cat, lane=lane, start=start, end=end,
                  args=args, stream=self.stream)
        with self._lock:
            self._spans.append(sp)

    def gauge(self, name: str, **values: float) -> None:
        """Sample a counter series (rendered as a Chrome counter track)."""
        self.add_gauge(name, self.now(), **values)

    def add_gauge(self, name: str, ts: float, **values: float) -> None:
        """Record a gauge sample with an explicit timestamp (e.g. one
        measured in a worker process and rebased via :meth:`rebase_raw`)."""
        sample = GaugeSample(name=name, ts=ts,
                             values={k: float(v) for k, v in values.items()},
                             stream=self.stream)
        with self._lock:
            self._gauges.append(sample)

    def bump(self, name: str, **deltas: float) -> Dict[str, float]:
        """Increment the named cumulative counter set and emit the new
        totals as a gauge sample — the recovery counters (retries,
        respawns, degradations) of the fault-tolerant executor are
        recorded this way, so a trace shows both *when* recovery happened
        (spans) and *how much* (this monotone counter track)."""
        with self._lock:
            counters = self._counters.setdefault(name, {})
            for key, delta in deltas.items():
                counters[key] = counters.get(key, 0.0) + float(delta)
            snapshot = dict(counters)
        self.add_gauge(name, self.now(), **snapshot)
        return snapshot

    def counters(self, name: str) -> Dict[str, float]:
        """Current totals of one :meth:`bump` counter set (empty if unused)."""
        with self._lock:
            return dict(self._counters.get(name, {}))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def spans(self) -> Tuple[Span, ...]:
        with self._lock:
            return tuple(self._spans)

    @property
    def gauges(self) -> Tuple[GaugeSample, ...]:
        with self._lock:
            return tuple(self._gauges)

    def spans_by_cat(self, cat: str) -> Tuple[Span, ...]:
        return tuple(s for s in self.spans if s.cat == cat)

    def gauge_max(self, name: str, key: str) -> Optional[float]:
        """Max of one value across all samples of one gauge series, or
        ``None`` if never sampled — how budget assertions read peaks
        (e.g. ``gauge_max("host_mem", "reserved")``)."""
        best: Optional[float] = None
        for sample in self.gauges:
            if sample.name == name and key in sample.values:
                v = sample.values[key]
                best = v if best is None else max(best, v)
        return best

    def wall_seconds(self) -> float:
        """End of the latest span (the traced run's makespan)."""
        spans = self.spans
        return max((s.end for s in spans), default=0.0)


class _NullSpanHandle:
    """Reusable no-op context manager (a single module-level instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """The disabled tracer: every operation is a constant-time no-op.

    ``span`` hands back one shared context-manager singleton and nothing
    is ever recorded, so instrumentation left in hot paths costs a method
    call and no allocation when tracing is off.
    """

    enabled = False

    def now(self) -> float:
        return 0.0

    def rebase_raw(self, raw: float) -> float:
        return 0.0

    def span(self, name: str, cat: str, *, lane: Optional[str] = None, **args):
        return _NULL_SPAN

    def add_span(self, name: str, cat: str, start: float, end: float, *,
                 lane: Optional[str] = None, **args) -> None:
        return None

    def gauge(self, name: str, **values: float) -> None:
        return None

    def add_gauge(self, name: str, ts: float, **values: float) -> None:
        return None

    def bump(self, name: str, **deltas: float) -> Dict[str, float]:
        return {}

    def counters(self, name: str) -> Dict[str, float]:
        return {}

    @property
    def spans(self) -> Tuple[Span, ...]:
        return ()

    @property
    def gauges(self) -> Tuple[GaugeSample, ...]:
        return ()

    def spans_by_cat(self, cat: str) -> Tuple[Span, ...]:
        return ()

    def gauge_max(self, name: str, key: str) -> Optional[float]:
        return None

    def wall_seconds(self) -> float:
        return 0.0


#: shared default instance — ``tracer=None`` everywhere resolves to this
NULL_TRACER = NullTracer()


def as_tracer(tracer) -> "Tracer":
    """Normalize an optional tracer argument (None -> the null tracer)."""
    return NULL_TRACER if tracer is None else tracer
