"""Reachability and shortest paths via semiring SpGEMM.

Classic repeated-squaring formulations (paper citations [8], [22], [35]):

* ``k``-hop reachability over the (or, and) semiring;
* ``k``-hop shortest distances over the (min, +) semiring;
* BFS levels by multiplying a frontier vector (as a 1 x n matrix) into
  the adjacency each step.
"""

from __future__ import annotations

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE
from ..sparse.ops import add, drop_explicit_zeros
from ..spgemm.semiring import MIN_PLUS, OR_AND, spgemm_semiring

__all__ = ["k_hop_reachability", "k_hop_distances", "bfs_levels"]


def _with_self_loops(a: CSRMatrix, value: float) -> CSRMatrix:
    eye = CSRMatrix(
        a.n_rows, a.n_cols,
        np.arange(a.n_rows + 1, dtype=INDEX_DTYPE),
        np.arange(a.n_rows, dtype=INDEX_DTYPE),
        np.full(a.n_rows, value),
    )
    return add(a, eye)


def k_hop_reachability(graph: CSRMatrix, k: int) -> CSRMatrix:
    """0/1 matrix of pairs connected by a path of length <= ``k``.

    Repeated squaring over (or, and): ``ceil(log2 k)`` SpGEMMs.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    # closure under <=: include the diagonal so powers accumulate paths
    reach = _with_self_loops(graph, 1.0)
    reach = spgemm_semiring(reach, reach, OR_AND)  # now <= 2 hops
    hops = 2
    while hops < k:
        reach = spgemm_semiring(reach, reach, OR_AND)
        hops *= 2
    return reach


def k_hop_distances(graph: CSRMatrix, k: int) -> CSRMatrix:
    """Shortest-path distances using at most ``k`` edges, over (min, +).

    Stored entries are finite distances; absent pairs are unreachable
    within ``k`` hops.  Distance 0 on the diagonal is stored explicitly?
    No — (min,+) treats the additive zero (+inf) as absence, and the
    0-weight self-loops used for the closure are pruned from the result
    (a true 0 distance is only the diagonal).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    dist = _with_self_loops(graph, 0.0)
    hops = 1
    while hops < k:
        dist = spgemm_semiring(dist, dist, MIN_PLUS)
        hops *= 2
    return drop_explicit_zeros(dist)


def bfs_levels(graph: CSRMatrix, source: int) -> np.ndarray:
    """BFS levels from ``source`` (-1 for unreachable vertices).

    Level-synchronous: the frontier is a 1 x n boolean matrix multiplied
    into the adjacency over (or, and) each step.
    """
    if not 0 <= source < graph.n_rows:
        raise IndexError(f"source {source} out of range")
    levels = np.full(graph.n_rows, -1, dtype=np.int64)
    levels[source] = 0
    frontier = CSRMatrix(
        1, graph.n_rows,
        np.array([0, 1], dtype=INDEX_DTYPE),
        np.array([source], dtype=INDEX_DTYPE),
        np.ones(1),
    )
    level = 0
    while frontier.nnz:
        level += 1
        nxt = spgemm_semiring(frontier, graph, OR_AND)
        fresh = nxt.col_ids[levels[nxt.col_ids] == -1]
        if fresh.size == 0:
            break
        levels[fresh] = level
        frontier = CSRMatrix(
            1, graph.n_rows,
            np.array([0, fresh.size], dtype=INDEX_DTYPE),
            np.sort(fresh),
            np.ones(fresh.size),
            check=False,
        )
    return levels
