"""Algebraic-multigrid building blocks on the SpGEMM executors.

The paper's numerical motivation ([7]): AMG preconditioners spend much of
their setup in the Galerkin triple product ``A_c = R · A · P``.  Both
multiplications route through the framework (in-core, or out-of-core on a
simulated node).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..device.specs import NodeSpec
from ..sparse.formats import CSRMatrix, INDEX_DTYPE
from ..sparse.ops import transpose
from ..spgemm.twophase import spgemm_twophase

__all__ = ["aggregation_prolongator", "galerkin_product", "amg_hierarchy"]


def aggregation_prolongator(n_fine: int, agg_size: int) -> CSRMatrix:
    """Piecewise-constant aggregation ``P``: fine point i -> aggregate
    ``i // agg_size`` (each column scaled to unit 2-norm)."""
    if agg_size < 1:
        raise ValueError("agg_size must be >= 1")
    n_coarse = (n_fine + agg_size - 1) // agg_size
    cols = np.arange(n_fine, dtype=INDEX_DTYPE) // agg_size
    sizes = np.bincount(cols, minlength=n_coarse).astype(float)
    vals = 1.0 / np.sqrt(sizes[cols])
    return CSRMatrix(
        n_fine, n_coarse,
        np.arange(n_fine + 1, dtype=INDEX_DTYPE), cols, vals,
    )


def _multiply(a: CSRMatrix, b: CSRMatrix, node: Optional[NodeSpec]) -> CSRMatrix:
    if node is None:
        return spgemm_twophase(a, b).matrix
    from ..core.api import run_out_of_core

    return run_out_of_core(a, b, node).matrix


def galerkin_product(
    a: CSRMatrix, p: CSRMatrix, *, node: Optional[NodeSpec] = None
) -> CSRMatrix:
    """The coarse operator ``Pᵀ · A · P``."""
    if a.n_cols != p.n_rows:
        raise ValueError(f"dimension mismatch: A {a.shape} vs P {p.shape}")
    ap = _multiply(a, p, node)
    return _multiply(transpose(p), ap, node)


def amg_hierarchy(
    a: CSRMatrix,
    *,
    agg_size: int = 4,
    min_size: int = 64,
    max_levels: int = 10,
    node: Optional[NodeSpec] = None,
) -> Tuple[CSRMatrix, ...]:
    """A full coarsening hierarchy ``(A_0, A_1, ...)`` by repeated
    aggregation + Galerkin products, until the operator is small."""
    if a.n_rows != a.n_cols:
        raise ValueError("AMG coarsening needs a square operator")
    levels = [a]
    current = a
    for _ in range(max_levels - 1):
        if current.n_rows <= min_size:
            break
        p = aggregation_prolongator(current.n_rows, agg_size)
        current = galerkin_product(current, p, node=node)
        levels.append(current)
    return tuple(levels)
