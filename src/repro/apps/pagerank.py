"""PageRank by power iteration on the CSR substrate.

The standard companion to the paper's graph workloads: repeated SpMV with
the column-stochastic transition matrix plus teleportation.  Dangling
vertices (no out-links) distribute their mass uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..sparse.formats import CSRMatrix
from ..sparse.ops import transpose
from .solver import spmv

__all__ = ["PageRankResult", "pagerank"]


@dataclass(frozen=True)
class PageRankResult:
    scores: np.ndarray
    iterations: int
    converged: bool
    delta: float


def pagerank(
    graph: CSRMatrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
) -> PageRankResult:
    """PageRank scores of a directed graph (rows = sources).

    Iterates ``x <- d · Pᵀ x + teleport`` where ``P`` is the row-stochastic
    transition matrix; converges when the L1 change drops below ``tol``.
    """
    if graph.n_rows != graph.n_cols:
        raise ValueError("PageRank needs a square adjacency matrix")
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = graph.n_rows
    if n == 0:
        return PageRankResult(np.empty(0), 0, True, 0.0)

    # row-normalize by total out-WEIGHT (edge weights respected, matching
    # networkx's weighted PageRank); zero-weight rows are dangling
    out_weight = np.zeros(n)
    np.add.at(out_weight, graph.expand_row_ids(), graph.data)
    dangling = out_weight == 0
    inv_weight = np.divide(1.0, out_weight, out=np.zeros(n), where=~dangling)
    p = CSRMatrix(
        n, n, graph.row_offsets.copy(), graph.col_ids.copy(),
        graph.data * np.repeat(inv_weight, graph.row_nnz()), check=False,
    )
    pt = transpose(p)

    x = np.full(n, 1.0 / n)
    it = 0
    delta = np.inf
    for it in range(1, max_iterations + 1):
        dangling_mass = float(x[dangling].sum()) / n
        nxt = damping * (spmv(pt, x) + dangling_mass) + (1.0 - damping) / n
        delta = float(np.abs(nxt - x).sum())
        x = nxt
        if delta < tol:
            return PageRankResult(x, it, True, delta)
    return PageRankResult(x, it, False, delta)
