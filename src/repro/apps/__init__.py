"""Application workloads on top of the SpGEMM framework.

The paper motivates out-of-core SpGEMM through graph analytics and
numerical solvers; this subpackage implements those consumers on the
library's own kernels: triangle counting, semiring reachability/shortest
paths, Markov clustering, and AMG Galerkin coarsening.  Each accepts an
optional simulated node to route its multiplications through the
out-of-core executor.
"""

from .amg import aggregation_prolongator, amg_hierarchy, galerkin_product
from .graphs import hadamard, hadamard_sum, remove_diagonal, symmetrize, to_unweighted
from .mcl import MCLResult, column_normalize, markov_clustering
from .pagerank import PageRankResult, pagerank
from .reachability import bfs_levels, k_hop_distances, k_hop_reachability
from .solver import AMGPreconditioner, SolveResult, conjugate_gradient, spmv
from .triangles import count_triangles, triangles_per_vertex

__all__ = [
    "aggregation_prolongator",
    "amg_hierarchy",
    "galerkin_product",
    "hadamard",
    "hadamard_sum",
    "remove_diagonal",
    "symmetrize",
    "to_unweighted",
    "MCLResult",
    "column_normalize",
    "markov_clustering",
    "PageRankResult",
    "pagerank",
    "AMGPreconditioner",
    "SolveResult",
    "conjugate_gradient",
    "spmv",
    "bfs_levels",
    "k_hop_distances",
    "k_hop_reachability",
    "count_triangles",
    "triangles_per_vertex",
]
