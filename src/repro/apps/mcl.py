"""Markov clustering (MCL) driven by the out-of-core SpGEMM executor.

The paper's related work highlights Markov clustering as a flagship
SpGEMM consumer ([29] MLR-MCL; [33] runs MCL on pre-exascale machines
with a pipelined SpGEMM).  The MCL loop alternates:

* **expansion** — squaring the column-stochastic matrix (the SpGEMM;
  optionally routed through the out-of-core executor);
* **inflation** — entrywise power ``r`` followed by column
  re-normalization (sharpens cluster structure);
* **pruning** — dropping entries below a threshold (keeps it sparse).

At convergence the matrix is (nearly) idempotent; clusters are the
connected components of the attractor structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..device.specs import NodeSpec
from ..sparse.formats import CSRMatrix, INDEX_DTYPE
from ..sparse.ops import add, drop_explicit_zeros, transpose
from ..spgemm.twophase import spgemm_twophase
from .graphs import remove_diagonal

__all__ = ["MCLResult", "column_normalize", "markov_clustering"]


@dataclass(frozen=True)
class MCLResult:
    labels: np.ndarray        # cluster id per vertex
    num_clusters: int
    iterations: int
    converged: bool
    final_matrix: CSRMatrix


def column_normalize(m: CSRMatrix) -> CSRMatrix:
    """Scale every column to sum 1 (columns with zero sum stay zero)."""
    sums = np.zeros(m.n_cols)
    np.add.at(sums, m.col_ids, m.data)
    scale = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums != 0)
    return CSRMatrix(
        m.n_rows, m.n_cols, m.row_offsets.copy(), m.col_ids.copy(),
        m.data * scale[m.col_ids], check=False,
    )


def _inflate(m: CSRMatrix, power: float, prune: float) -> CSRMatrix:
    data = np.power(m.data, power)
    inflated = CSRMatrix(
        m.n_rows, m.n_cols, m.row_offsets.copy(), m.col_ids.copy(), data, check=False
    )
    normalized = column_normalize(inflated)
    return drop_explicit_zeros(normalized, tol=prune)


def _expand(m: CSRMatrix, node: Optional[NodeSpec]) -> CSRMatrix:
    if node is None:
        return spgemm_twophase(m, m).matrix
    from ..core.api import run_out_of_core

    return run_out_of_core(m, m, node).matrix


def _components(structure: CSRMatrix) -> np.ndarray:
    """Connected components of the symmetrized structure (union-find)."""
    parent = np.arange(structure.n_rows, dtype=INDEX_DTYPE)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    rows = structure.expand_row_ids()
    for r, c in zip(rows.tolist(), structure.col_ids.tolist()):
        ra, rb = find(r), find(c)
        if ra != rb:
            parent[rb] = ra

    roots = np.array([find(i) for i in range(structure.n_rows)])
    _, labels = np.unique(roots, return_inverse=True)
    return labels


def markov_clustering(
    graph: CSRMatrix,
    *,
    inflation: float = 2.0,
    prune: float = 1e-4,
    max_iterations: int = 50,
    tol: float = 1e-6,
    node: Optional[NodeSpec] = None,
    add_self_loops: bool = True,
) -> MCLResult:
    """Cluster an undirected graph with the MCL process.

    ``node`` routes every expansion (the SpGEMM) through the out-of-core
    executor on that simulated device.
    """
    if inflation <= 1.0:
        raise ValueError("inflation must exceed 1")
    a = remove_diagonal(add(graph, transpose(graph)))
    if add_self_loops:
        eye = CSRMatrix(
            a.n_rows, a.n_cols,
            np.arange(a.n_rows + 1, dtype=INDEX_DTYPE),
            np.arange(a.n_rows, dtype=INDEX_DTYPE),
            np.ones(a.n_rows),
        )
        a = add(a, eye)
    m = column_normalize(a)

    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        expanded = _expand(m, node)
        nxt = _inflate(expanded, inflation, prune)
        # convergence: structure stable and values stationary
        if nxt.shape == m.shape and np.array_equal(nxt.col_ids, m.col_ids) and np.array_equal(
            nxt.row_offsets, m.row_offsets
        ):
            if np.max(np.abs(nxt.data - m.data), initial=0.0) < tol:
                m = nxt
                converged = True
                break
        m = nxt

    labels = _components(m)
    return MCLResult(
        labels=labels,
        num_clusters=int(labels.max()) + 1 if labels.size else 0,
        iterations=it,
        converged=converged,
        final_matrix=m,
    )
