"""Graph utilities shared by the application algorithms."""

from __future__ import annotations

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE

__all__ = ["symmetrize", "remove_diagonal", "to_unweighted", "hadamard_sum", "hadamard"]


def remove_diagonal(g: CSRMatrix) -> CSRMatrix:
    """Drop self-loops."""
    keep = g.col_ids != g.expand_row_ids()
    rows = g.expand_row_ids()[keep]
    row_offsets = np.zeros(g.n_rows + 1, dtype=INDEX_DTYPE)
    np.add.at(row_offsets, rows + 1, 1)
    np.cumsum(row_offsets, out=row_offsets)
    return CSRMatrix(
        g.n_rows, g.n_cols, row_offsets, g.col_ids[keep], g.data[keep], check=False
    )


def to_unweighted(g: CSRMatrix) -> CSRMatrix:
    """Set every stored value to 1.0 (adjacency structure only)."""
    return CSRMatrix(
        g.n_rows, g.n_cols, g.row_offsets.copy(), g.col_ids.copy(),
        np.ones(g.nnz), check=False,
    )


def symmetrize(g: CSRMatrix, *, unweighted: bool = True) -> CSRMatrix:
    """Undirected simple graph from a directed one: ``sign(G + Gᵀ)`` with
    the diagonal removed (when ``unweighted``), else ``G + Gᵀ``."""
    from ..sparse.ops import add, transpose

    sym = remove_diagonal(add(g, transpose(g)))
    return to_unweighted(sym) if unweighted else sym


def _keys(m: CSRMatrix) -> np.ndarray:
    """(row, col) -> single int64 key; safe while rows*cols < 2^63."""
    return m.expand_row_ids() * np.int64(m.n_cols) + m.col_ids


def hadamard(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Element-wise product ``A ∘ B`` (intersection of structures)."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    ka, kb = _keys(a), _keys(b)
    common, ia, ib = np.intersect1d(ka, kb, assume_unique=False, return_indices=True)
    rows = (common // a.n_cols).astype(INDEX_DTYPE)
    row_offsets = np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE)
    np.add.at(row_offsets, rows + 1, 1)
    np.cumsum(row_offsets, out=row_offsets)
    return CSRMatrix(
        a.n_rows, a.n_cols, row_offsets,
        (common % a.n_cols).astype(INDEX_DTYPE),
        a.data[ia] * b.data[ib],
        check=False,
    )


def hadamard_sum(a: CSRMatrix, b: CSRMatrix) -> float:
    """``sum(A ∘ B)`` without materializing the product structure."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    ka, kb = _keys(a), _keys(b)
    _, ia, ib = np.intersect1d(ka, kb, assume_unique=False, return_indices=True)
    return float((a.data[ia] * b.data[ib]).sum())
