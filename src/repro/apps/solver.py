"""Iterative solving with an AMG-preconditioned conjugate gradient.

Closes the paper's opening loop: "SpGEMM is one of the key kernels of
preconditioners such as algebraic multigrid".  The AMG *setup* builds the
coarse hierarchy with Galerkin SpGEMMs (:mod:`repro.apps.amg`, optionally
out-of-core); the *solve* applies a V-cycle of weighted-Jacobi smoothing
as the preconditioner inside conjugate gradients.

Pure numpy; the sparse matrix-vector product is vectorized through the
CSR arrays directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..device.specs import NodeSpec
from ..sparse.formats import CSRMatrix
from ..sparse.ops import transpose
from .amg import aggregation_prolongator, galerkin_product

__all__ = ["spmv", "AMGPreconditioner", "SolveResult", "conjugate_gradient"]


def spmv(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A x`` (vectorized gather + segment sum)."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (a.n_cols,):
        raise ValueError(f"vector has shape {x.shape}, expected ({a.n_cols},)")
    products = a.data * x[a.col_ids]
    y = np.zeros(a.n_rows)
    np.add.at(y, a.expand_row_ids(), products)
    return y


def _diagonal(a: CSRMatrix) -> np.ndarray:
    rows = a.expand_row_ids()
    diag = np.zeros(a.n_rows)
    on_diag = rows == a.col_ids
    diag[rows[on_diag]] = a.data[on_diag]
    return diag


class AMGPreconditioner:
    """Two-or-more-level V-cycle with weighted-Jacobi smoothing.

    Setup cost is the Galerkin SpGEMM chain; ``node`` routes those
    products through the out-of-core executor.
    """

    def __init__(
        self,
        a: CSRMatrix,
        *,
        agg_size: int = 4,
        max_levels: int = 4,
        min_size: int = 50,
        omega: float = 2.0 / 3.0,
        pre_sweeps: int = 1,
        post_sweeps: int = 1,
        node: Optional[NodeSpec] = None,
    ) -> None:
        if a.n_rows != a.n_cols:
            raise ValueError("AMG needs a square operator")
        self.omega = omega
        self.pre_sweeps = pre_sweeps
        self.post_sweeps = post_sweeps

        self.operators: List[CSRMatrix] = [a]
        self.prolongators: List[CSRMatrix] = []
        self.restrictions: List[CSRMatrix] = []
        current = a
        for _ in range(max_levels - 1):
            if current.n_rows <= min_size:
                break
            p = aggregation_prolongator(current.n_rows, agg_size)
            coarse = galerkin_product(current, p, node=node)
            self.prolongators.append(p)
            self.restrictions.append(transpose(p))
            self.operators.append(coarse)
            current = coarse

        self._diags = [
            np.where(d != 0, d, 1.0) for d in map(_diagonal, self.operators)
        ]
        # dense solve on the coarsest level
        self._coarse_dense = self.operators[-1].to_dense()

    @property
    def num_levels(self) -> int:
        return len(self.operators)

    def _smooth(self, level: int, x: np.ndarray, b: np.ndarray, sweeps: int) -> np.ndarray:
        a = self.operators[level]
        d = self._diags[level]
        for _ in range(sweeps):
            x = x + self.omega * (b - spmv(a, x)) / d
        return x

    def _vcycle(self, level: int, b: np.ndarray) -> np.ndarray:
        if level == self.num_levels - 1:
            return np.linalg.lstsq(self._coarse_dense, b, rcond=None)[0]
        x = self._smooth(level, np.zeros_like(b), b, self.pre_sweeps)
        residual = b - spmv(self.operators[level], x)
        coarse_b = spmv(self.restrictions[level], residual)
        correction = self._vcycle(level + 1, coarse_b)
        x = x + spmv(self.prolongators[level], correction)
        return self._smooth(level, x, b, self.post_sweeps)

    def apply(self, r: np.ndarray) -> np.ndarray:
        """One V-cycle approximating ``A^{-1} r``."""
        return self._vcycle(0, np.asarray(r, dtype=np.float64))


@dataclass(frozen=True)
class SolveResult:
    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: Tuple[float, ...]


def conjugate_gradient(
    a: CSRMatrix,
    b: np.ndarray,
    *,
    preconditioner: Optional[AMGPreconditioner] = None,
    tol: float = 1e-8,
    max_iterations: int = 500,
) -> SolveResult:
    """(Preconditioned) conjugate gradients for SPD ``A x = b``."""
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b)
    r = b - spmv(a, x)
    b_norm = np.linalg.norm(b) or 1.0
    history = [float(np.linalg.norm(r))]
    if history[0] <= tol * b_norm:
        return SolveResult(x, 0, True, history[0], tuple(history))

    z = preconditioner.apply(r) if preconditioner else r
    p = z.copy()
    rz = float(r @ z)

    it = 0
    for it in range(1, max_iterations + 1):
        ap = spmv(a, p)
        pap = float(p @ ap)
        if pap <= 0:
            break  # not SPD (or breakdown); return best effort
        alpha = rz / pap
        x = x + alpha * p
        r = r - alpha * ap
        res = float(np.linalg.norm(r))
        history.append(res)
        if res <= tol * b_norm:
            return SolveResult(x, it, True, res, tuple(history))
        z = preconditioner.apply(r) if preconditioner else r
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new

    return SolveResult(x, it, False, history[-1], tuple(history))
