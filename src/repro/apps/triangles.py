"""Triangle counting via SpGEMM (one of the paper's graph motivations).

For an undirected simple graph with adjacency ``A``:

* per-pair wedge counts are ``A²``;
* the global triangle count is ``sum(A² ∘ A) / 6``;
* per-vertex counts are ``diag(A³) / 2 = rowsum(A² ∘ A) / 2``.

The squaring runs either in-core or through the out-of-core executor
(pass a node), which is exactly the paper's scenario: ``A²`` of a large
graph dwarfs the graph itself.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device.specs import NodeSpec
from ..sparse.formats import CSRMatrix
from ..spgemm.twophase import spgemm_twophase
from .graphs import hadamard, symmetrize

__all__ = ["count_triangles", "triangles_per_vertex"]


def _square(a: CSRMatrix, node: Optional[NodeSpec]) -> CSRMatrix:
    if node is None:
        return spgemm_twophase(a, a).matrix
    from ..core.api import run_out_of_core

    return run_out_of_core(a, a, node).matrix


def count_triangles(
    graph: CSRMatrix,
    *,
    node: Optional[NodeSpec] = None,
    assume_canonical: bool = False,
) -> int:
    """Number of triangles in the (symmetrized) graph.

    ``assume_canonical`` skips the symmetrize/clean step when the input is
    already an undirected simple 0/1 adjacency matrix.
    """
    a = graph if assume_canonical else symmetrize(graph)
    wedges = _square(a, node)
    closed = hadamard(wedges, a)
    total = closed.data.sum()
    count = total / 6.0
    if abs(count - round(count)) > 1e-6:
        raise ValueError(
            "non-integral triangle count — is the input an undirected "
            "simple 0/1 graph? (pass assume_canonical=False to clean it)"
        )
    return int(round(count))


def triangles_per_vertex(
    graph: CSRMatrix,
    *,
    node: Optional[NodeSpec] = None,
    assume_canonical: bool = False,
) -> np.ndarray:
    """Triangles through each vertex (sums to ``3 x count_triangles``)."""
    a = graph if assume_canonical else symmetrize(graph)
    wedges = _square(a, node)
    closed = hadamard(wedges, a)
    per_vertex = np.zeros(a.n_rows)
    np.add.at(per_vertex, closed.expand_row_ids(), closed.data)
    return per_vertex / 2.0
