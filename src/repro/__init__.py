"""repro — out-of-core CPU-GPU SpGEMM framework.

A faithful reproduction of Xia, Agrawal, Jiang & Ramnath, *Scaling Sparse
Matrix Multiplication on CPU-GPU Nodes* (IPDPS 2021): a from-scratch CSR
substrate and two-phase SpGEMM kernels, a discrete-event simulated
CPU-GPU node (streams, copy engines, memory pools), and the paper's
out-of-core, asynchronous, and hybrid executors, plus the full evaluation
harness.

Quick start::

    from repro.sparse import rmat
    from repro.core import run_out_of_core
    from repro.device import v100_node

    a = rmat(12, 8.0, seed=1)
    node = v100_node(device_memory_bytes=64 << 20)
    result = run_out_of_core(a, a, node)
    print(result.summary())
"""

__version__ = "0.1.0"

from . import apps, core, cpu, device, distributed, metrics, sparse, spgemm

__all__ = ["apps", "core", "cpu", "device", "distributed", "metrics", "sparse", "spgemm", "__version__"]
